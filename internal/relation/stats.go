package relation

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ivm/internal/value"
)

// Cardinality statistics: per-column distinct-value estimates maintained
// incrementally, feeding the cost-based join planner in internal/eval.
//
// Each column gets a small linear-counting sketch (a fixed array of
// bucket refcounts keyed by a hash of the column value). The estimate is
// the classic m·ln(m/empty) formula; refcounts (rather than bits) make
// the sketch decrementable, so deletions are handled exactly like
// insertions. Sketches follow the lazy-index discipline: nothing is
// allocated until the first DistinctEst call, after which Add/Delete keep
// the sketch in sync via the same transition points that maintain
// indexes. Relations built by direct map writes (Clone, Negate, ToSet,
// SetDiff, ...) start with no stats, so they can never go stale.

// statsBuckets is the number of refcount buckets per column sketch.
// Linear counting with 256 buckets estimates well up to a few thousand
// distinct values and saturates (toward Len) beyond — plenty for join
// ordering, which only needs the right order of magnitude.
const statsBuckets = 256

type colSketch struct {
	buckets [statsBuckets]int32
	nonzero int
}

func (c *colSketch) add(v value.Value, delta int) {
	b := &c.buckets[hashValue(v)%statsBuckets]
	was := *b
	*b += int32(delta)
	switch {
	case was == 0 && *b != 0:
		c.nonzero++
	case was != 0 && *b == 0:
		c.nonzero--
	}
}

// estimate returns the linear-counting distinct estimate, clamped to
// [1, n] (0 when the relation is empty). n is the relation's Len.
func (c *colSketch) estimate(n int) int {
	if n == 0 {
		return 0
	}
	empty := statsBuckets - c.nonzero
	if empty <= 0 {
		return n // sketch saturated: at least ~statsBuckets·ln(statsBuckets) distinct
	}
	est := int(math.Round(statsBuckets * math.Log(statsBuckets/float64(empty))))
	if est < 1 {
		est = 1
	}
	if est > n {
		est = n
	}
	return est
}

// tableStats holds one sketch per column. mu serializes sketch updates
// against concurrent estimate reads so the race detector stays clean if
// a planner consults a relation another goroutine is lazily building
// stats for.
type tableStats struct {
	mu   sync.Mutex
	cols []colSketch
}

func (st *tableStats) add(t value.Tuple, delta int) {
	st.mu.Lock()
	for i := range st.cols {
		if i < len(t) {
			st.cols[i].add(t[i], delta)
		}
	}
	st.mu.Unlock()
}

func (st *tableStats) estimate(col, n int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if col < 0 || col >= len(st.cols) {
		return n
	}
	return st.cols[col].estimate(n)
}

// CardEstimator is the optional Reader extension the planner consults for
// per-column distinct estimates. Readers that do not implement it are
// costed with DistinctEstimate's fallback.
type CardEstimator interface {
	// DistinctEst estimates the number of distinct values in column col.
	// The result is always within [0, Len()].
	DistinctEst(col int) int
}

// DistinctEstimate returns an estimate of the number of distinct values
// in column col of rd, falling back to rd.Len() (every tuple distinct in
// that column — the optimistic upper bound) when rd keeps no statistics.
func DistinctEstimate(rd Reader, col int) int {
	if ce, ok := rd.(CardEstimator); ok {
		return ce.DistinctEst(col)
	}
	return rd.Len()
}

// DistinctEst estimates the number of distinct values in column col,
// building the relation's sketches on first use (O(Len), internally
// synchronized — legal on frozen relations, like lazy index builds) and
// maintaining them incrementally afterwards.
func (r *Relation) DistinctEst(col int) int {
	if col < 0 || (r.arity >= 0 && col >= r.arity) {
		return len(r.rows)
	}
	r.statsMu.RLock()
	st := r.stats
	r.statsMu.RUnlock()
	if st == nil {
		r.statsMu.Lock()
		if st = r.stats; st == nil {
			arity := r.arity
			if arity < 0 {
				arity = 0
			}
			st = &tableStats{cols: make([]colSketch, arity)}
			for _, row := range r.rows {
				st.add(row.Tuple, 1)
			}
			r.stats = st
			r.hasStats.Store(true)
		}
		r.statsMu.Unlock()
	}
	return st.estimate(col, len(r.rows))
}

// statsAdd records a presence transition of t (delta +1 on insert, −1 on
// removal) in the column sketches. Count-only changes do not call it:
// distinct counts track tuple presence, not multiplicity.
func (r *Relation) statsAdd(t value.Tuple, delta int) {
	if !r.hasStats.Load() {
		return
	}
	r.statsMu.RLock()
	st := r.stats
	r.statsMu.RUnlock()
	if st != nil {
		st.add(t, delta)
	}
}

// hashValue is FNV-1a over the value's kind and payload, avoiding the
// allocation of the canonical key encoding on the mutation hot path.
func hashValue(v value.Value) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime32
	}
	mix(byte(v.Kind()))
	switch v.Kind() {
	case value.Int:
		u := uint64(v.Int())
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case value.Float:
		u := math.Float64bits(v.Float())
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	case value.String:
		s := v.Str()
		for i := 0; i < len(s); i++ {
			mix(s[i])
		}
	}
	return h
}

// IndexPreferrer is the optional Reader extension the planner consults to
// reuse an existing hash index instead of lazily building a new one for
// every distinct bound-column set.
type IndexPreferrer interface {
	// PreferredIndex returns the column set of an existing index whose
	// columns are a subset of bound (which must be sorted ascending), or
	// nil when none applies. The result is deterministic: exact matches
	// win, then the widest subset, ties broken by column signature.
	PreferredIndex(bound []int) []int
}

// PreferredIndexFor consults rd's existing indexes for one usable with
// the given bound columns; nil when rd has none (or no subset applies).
func PreferredIndexFor(rd Reader, bound []int) []int {
	if ip, ok := rd.(IndexPreferrer); ok {
		return ip.PreferredIndex(bound)
	}
	return nil
}

// PreferredIndex implements IndexPreferrer over the relation's live index
// set. See the interface for the selection rule.
func (r *Relation) PreferredIndex(bound []int) []int {
	if !r.hasIdx.Load() || len(bound) == 0 {
		return nil
	}
	r.idxMu.RLock()
	defer r.idxMu.RUnlock()
	if ix := r.idx[colsSig(bound)]; ix != nil {
		return append([]int(nil), ix.cols...)
	}
	inBound := make(map[int]bool, len(bound))
	for _, c := range bound {
		inBound[c] = true
	}
	var bestSig string
	var best []int
	for sig, ix := range r.idx {
		usable := len(ix.cols) > 0
		for _, c := range ix.cols {
			if !inBound[c] {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		if best == nil || len(ix.cols) > len(best) || (len(ix.cols) == len(best) && sig < bestSig) {
			best, bestSig = ix.cols, sig
		}
	}
	if best == nil {
		return nil
	}
	out := append([]int(nil), best...)
	sort.Ints(out)
	return out
}

// indexesBuilt counts hash-index builds process-wide; IndexesBuilt feeds
// the relation_indexes_built gauge so index proliferation is visible.
var indexesBuilt atomic.Int64

// IndexesBuilt returns the cumulative number of lazy hash-index builds
// across all relations in the process.
func IndexesBuilt() int64 { return indexesBuilt.Load() }

package relation

import "sync/atomic"

// Versioned is an immutable, copy-on-write relation version: the unit
// snapshot publication works with. A version is either a frozen
// *Relation or an overlay chain of frozen deltas above one; either way
// its content never changes after construction, so any number of
// goroutines may read it without synchronization while newer versions
// are derived from it.
//
// Push derives the successor version in O(|delta|) by stacking one more
// overlay link; probes (Count/Has/Lookup) then pay one map hit per
// link. To bound that read cost, Push flattens the chain back into a
// single relation when it grows too deep or when the accumulated delta
// rows become a sizable fraction of the base — which keeps publication
// amortized O(|delta|) per update while probes stay O(maxChainDepth)
// worst case.
type Versioned struct {
	rd    Reader // frozen *Relation, or an overlay chain over one
	depth int    // overlay links above the flat base
	pend  int    // delta rows accumulated above the flat base
	flen  int    // Len of the flat base at the bottom of the chain

	// flat caches the fully materialized (frozen) form, built lazily by
	// Flat or eagerly by flattening. Concurrent builders may race to
	// store it; every candidate has identical content, so last-writer-
	// wins is safe.
	flat atomic.Pointer[Relation]
}

const (
	// maxChainDepth bounds per-probe overhead: a reader pays at most
	// this many map hits per Count/Has. When a chain would exceed it,
	// Push flattens — so with pathological tiny deltas over a huge base,
	// publication degrades to O(|base|/maxChainDepth) amortized rather
	// than O(|base|) per update.
	maxChainDepth = 32
	// minFlattenRows keeps small relations from flattening on every
	// push; below this, chain depth alone triggers flattening.
	minFlattenRows = 256
)

// NewVersioned freezes r and wraps it as a depth-0 version. The caller
// must own r exclusively (pass a clone of any shared relation) and must
// not mutate it afterwards.
func NewVersioned(r *Relation) *Versioned {
	r.Freeze()
	v := &Versioned{rd: r, flen: r.Len()}
	v.flat.Store(r)
	return v
}

// Push returns a new version equal to v ⊎ delta, leaving v unchanged.
// delta is copied and frozen, so the caller may keep mutating its
// original. Cost is O(|delta|), amortized against occasional O(n)
// flattening (see the type comment).
func (v *Versioned) Push(delta *Relation) *Versioned {
	if delta.Empty() {
		return v
	}
	d := delta.Clone()
	d.Freeze()
	base, depth, pend, flen := v.rd, v.depth, v.pend, v.flen
	if f := v.flat.Load(); f != nil && depth > 0 {
		// A reader already materialized this version: chain from the
		// flat form and the depth resets for free.
		base, depth, pend, flen = f, 0, 0, f.Len()
	}
	nv := &Versioned{rd: Overlay(base, d), depth: depth + 1, pend: pend + d.Len(), flen: flen}
	if nv.depth >= maxChainDepth || (nv.pend >= minFlattenRows && nv.pend*4 >= nv.flen) {
		nv.flatten()
	}
	return nv
}

// flatten collapses the chain into a single frozen relation. Called
// only before the version is published (single goroutine).
func (v *Versioned) flatten() {
	f := Materialize(v.rd)
	f.Freeze()
	v.rd, v.depth, v.pend, v.flen = f, 0, 0, f.Len()
	v.flat.Store(f)
}

// Reader returns the version's read view: the cached flat relation if
// one exists, else the overlay chain.
func (v *Versioned) Reader() Reader {
	if f := v.flat.Load(); f != nil {
		return f
	}
	return v.rd
}

// Flat returns the version as a single frozen *Relation, materializing
// and caching it on first use. Full-scan consumers (sorted row dumps,
// explanation queries) use this so repeated scans of one version pay
// the merge cost once.
func (v *Versioned) Flat() *Relation {
	if f := v.flat.Load(); f != nil {
		return f
	}
	f := Materialize(v.rd)
	f.Freeze()
	v.flat.Store(f)
	return f
}

// Depth reports the current overlay-chain depth (0 when flat) — an
// observability hook for tests and metrics.
func (v *Versioned) Depth() int { return v.depth }

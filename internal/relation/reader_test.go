package relation

import (
	"testing"
	"testing/quick"

	"ivm/internal/value"
)

func TestOverlayBasics(t *testing.T) {
	base := rel(row(2, "a"), row(1, "b"))
	delta := rel(row(-2, "a"), row(1, "c"), row(1, "b"))
	o := Overlay(base, delta)

	if o.Count(value.T("a")) != 0 || o.Has(value.T("a")) {
		t.Error("a cancels")
	}
	if o.Count(value.T("b")) != 2 {
		t.Error("b = 2")
	}
	if o.Count(value.T("c")) != 1 {
		t.Error("c = 1")
	}

	got := Materialize(o)
	want := UnionPlus(base, delta)
	if !Equal(got, want) {
		t.Fatalf("Each mismatch: %v vs %v", got, want)
	}
}

func TestOverlayNilAndEmptyDelta(t *testing.T) {
	base := rel(row(1, "a"))
	if Overlay(base, nil) != Reader(base) {
		t.Error("nil delta returns base")
	}
	if Overlay(base, New(1)) != Reader(base) {
		t.Error("empty delta returns base")
	}
}

func TestOverlayLookup(t *testing.T) {
	base := New(2)
	base.Add(value.T("a", "b"), 1)
	base.Add(value.T("a", "c"), 1)
	delta := New(2)
	delta.Add(value.T("a", "b"), -1) // delete
	delta.Add(value.T("a", "d"), 1)  // insert
	o := Overlay(base, delta)

	rows := o.Lookup([]int{0}, value.T("a"))
	got := make(map[string]int64)
	for _, rw := range rows {
		got[rw.Tuple.Key()] = rw.Count
	}
	if len(got) != 2 {
		t.Fatalf("lookup: %v", got)
	}
	if got[value.T("a", "c").Key()] != 1 || got[value.T("a", "d").Key()] != 1 {
		t.Fatalf("lookup contents: %v", got)
	}
}

func TestOverlayComposes(t *testing.T) {
	base := rel(row(1, "a"))
	d1 := rel(row(1, "b"))
	d2 := rel(row(-1, "a"))
	o := Overlay(Overlay(base, d1), d2)
	if o.Has(value.T("a")) || !o.Has(value.T("b")) {
		t.Error("stacked overlays")
	}
	if Materialize(o).Len() != 1 {
		t.Error("materialized stacked overlay")
	}
}

func TestSetImage(t *testing.T) {
	base := rel(row(5, "a"), row(1, "b"))
	s := SetImage(base)
	if s.Count(value.T("a")) != 1 {
		t.Error("counts collapse to 1")
	}
	if s.Count(value.T("zzz")) != 0 {
		t.Error("absent stays 0")
	}
	if SetImage(s) != s {
		t.Error("SetImage is idempotent (no double wrap)")
	}
	m := Materialize(s)
	if m.TotalCount() != 2 || m.Len() != 2 {
		t.Errorf("materialized set image: %v", m)
	}
	// Lookup collapses too.
	base2 := New(2)
	base2.Add(value.T("a", "b"), 7)
	rows := SetImage(base2).Lookup([]int{0}, value.T("a"))
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Errorf("set lookup: %v", rows)
	}
}

func TestSetImageOverOverlay(t *testing.T) {
	base := rel(row(2, "a"))
	delta := rel(row(-1, "a"), row(3, "b"))
	s := SetImage(Overlay(base, delta))
	if s.Count(value.T("a")) != 1 || s.Count(value.T("b")) != 1 {
		t.Error("set of overlay")
	}
}

// TestOverlayQuick checks Overlay ≡ UnionPlus on random inputs for Count,
// Has, Each and Lookup.
func TestOverlayQuick(t *testing.T) {
	f := func(a, b []struct {
		K uint8
		C int8
	}) bool {
		base, delta := New(1), New(1)
		for _, x := range a {
			base.Add(value.T(int64(x.K%10)), int64(x.C))
		}
		for _, x := range b {
			delta.Add(value.T(int64(x.K%10)), int64(x.C))
		}
		o := Overlay(base, delta)
		want := UnionPlus(base, delta)
		if !Equal(Materialize(o), want) {
			return false
		}
		for k := int64(0); k < 10; k++ {
			if o.Count(value.T(k)) != want.Count(value.T(k)) {
				return false
			}
			if o.Has(value.T(k)) != want.Has(value.T(k)) {
				return false
			}
			lr := o.Lookup([]int{0}, value.T(k))
			wc := want.Count(value.T(k))
			switch {
			case wc == 0 && len(lr) != 0:
				return false
			case wc != 0 && (len(lr) != 1 || lr[0].Count != wc):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package relation

import (
	"testing"
	"testing/quick"

	"ivm/internal/value"
)

func rel(rows ...Row) *Relation { return FromRows(-1, rows) }

func row(count int64, vals ...any) Row { return Row{Tuple: value.T(vals...), Count: count} }

func TestAddMergeCancel(t *testing.T) {
	r := New(2)
	r.Add(value.T("a", "b"), 2)
	r.Add(value.T("a", "b"), -1)
	if got := r.Count(value.T("a", "b")); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	r.Add(value.T("a", "b"), -1)
	if r.Len() != 0 {
		t.Fatal("zero-count tuples must vanish")
	}
	r.Add(value.T("a", "b"), 0)
	if r.Len() != 0 {
		t.Fatal("adding count 0 is a no-op")
	}
}

func TestUnionPlusPaperSemantics(t *testing.T) {
	// Section 3: S1 ⊎ S2 adds counts, dropping zero results.
	s1 := rel(row(4, "a", "b"), row(-2, "m", "n"))
	s2 := rel(row(-4, "a", "b"), row(5, "m", "n"), row(1, "x", "y"))
	u := UnionPlus(s1, s2)
	if u.Count(value.T("a", "b")) != 0 {
		t.Error("ab cancels")
	}
	if u.Count(value.T("m", "n")) != 3 {
		t.Error("mn = 3")
	}
	if u.Count(value.T("x", "y")) != 1 {
		t.Error("xy = 1")
	}
	if u.Len() != 2 {
		t.Errorf("len = %d", u.Len())
	}
	// Inputs untouched.
	if s1.Count(value.T("a", "b")) != 4 || s2.Count(value.T("m", "n")) != 5 {
		t.Error("UnionPlus must not mutate inputs")
	}
}

func TestHasIsPositiveCount(t *testing.T) {
	r := rel(row(-1, "a"))
	if r.Has(value.T("a")) {
		t.Error("negative-count tuples are not 'true'")
	}
	if !rel(row(2, "a")).Has(value.T("a")) {
		t.Error("positive count is true")
	}
}

func TestSetDelete(t *testing.T) {
	r := rel(row(5, "a"))
	r.Set(value.T("a"), 2)
	if r.Count(value.T("a")) != 2 {
		t.Error("Set")
	}
	r.Set(value.T("b"), 3)
	if r.Count(value.T("b")) != 3 {
		t.Error("Set on absent")
	}
	r.Delete(value.T("a"))
	if r.Count(value.T("a")) != 0 || r.Len() != 1 {
		t.Error("Delete")
	}
}

func TestToSetAndSetDiff(t *testing.T) {
	r := rel(row(3, "a"), row(1, "b"), row(-2, "c"))
	s := r.ToSet()
	if s.Count(value.T("a")) != 1 || s.Count(value.T("b")) != 1 || s.Len() != 2 {
		t.Errorf("ToSet: %v", s)
	}
	a := rel(row(2, "x"), row(1, "y"))
	b := rel(row(1, "y"), row(4, "z"))
	d := SetDiff(a, b)
	if d.Count(value.T("x")) != 1 || d.Count(value.T("z")) != -1 || d.Count(value.T("y")) != 0 {
		t.Errorf("SetDiff: %v", d)
	}
}

func TestEqualAndEqualAsSets(t *testing.T) {
	a := rel(row(2, "a"), row(1, "b"))
	b := rel(row(1, "a"), row(1, "b"))
	if Equal(a, b) {
		t.Error("counts differ")
	}
	if !EqualAsSets(a, b) {
		t.Error("same sets")
	}
	if !Equal(a, a.Clone()) {
		t.Error("clone equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := rel(row(1, "a"))
	c := a.Clone()
	c.Add(value.T("a"), 5)
	if a.Count(value.T("a")) != 1 {
		t.Error("clone must not share counts")
	}
}

func TestTotalCountAndNegate(t *testing.T) {
	r := rel(row(3, "a"), row(-1, "b"))
	if r.TotalCount() != 2 {
		t.Errorf("TotalCount = %d", r.TotalCount())
	}
	n := r.Negate()
	if n.Count(value.T("a")) != -3 || n.Count(value.T("b")) != 1 {
		t.Errorf("Negate: %v", n)
	}
}

func TestArityEnforcement(t *testing.T) {
	r := New(2)
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic (internal invariant)")
		}
	}()
	r.Add(value.T("a"), 1)
}

func TestSortedRowsDeterministic(t *testing.T) {
	r := rel(row(1, "b"), row(1, "a"), row(1, "c"))
	rows := r.SortedRows()
	if len(rows) != 3 || rows[0].Tuple[0].Str() != "a" || rows[2].Tuple[0].Str() != "c" {
		t.Errorf("sorted: %v", rows)
	}
}

func TestStringRendering(t *testing.T) {
	r := rel(row(2, "a", "b"), row(1, "m", "n"))
	if got := r.String(); got != "{(a, b) 2, (m, n)}" {
		t.Errorf("String: %q", got)
	}
}

func TestLookupIndexMaintenance(t *testing.T) {
	r := New(2)
	r.Add(value.T("a", "b"), 1)
	r.Add(value.T("a", "c"), 2)
	r.Add(value.T("x", "b"), 1)

	rows := r.Lookup([]int{0}, value.T("a"))
	if len(rows) != 2 {
		t.Fatalf("lookup a: %d rows", len(rows))
	}
	// Index must track subsequent mutations.
	r.Add(value.T("a", "d"), 1)
	if len(r.Lookup([]int{0}, value.T("a"))) != 3 {
		t.Fatal("index must see inserts")
	}
	r.Add(value.T("a", "c"), -2)
	rows = r.Lookup([]int{0}, value.T("a"))
	if len(rows) != 2 {
		t.Fatalf("index must see deletes: %d rows", len(rows))
	}
	// Count updates inside buckets.
	r.Add(value.T("a", "b"), 4)
	for _, rw := range r.Lookup([]int{0}, value.T("a")) {
		if rw.Tuple.Equal(value.T("a", "b")) && rw.Count != 5 {
			t.Fatalf("bucket count = %d, want 5", rw.Count)
		}
	}
	// Second-column index coexists.
	if len(r.Lookup([]int{1}, value.T("b"))) != 2 {
		t.Fatal("second index")
	}
}

func TestLookupQuickAgainstScan(t *testing.T) {
	f := func(ops []struct {
		A, B  uint8
		Count int8
	}) bool {
		r := New(2)
		for _, op := range ops {
			r.Add(value.T(int64(op.A%8), int64(op.B%8)), int64(op.Count))
			// Force index creation early so maintenance paths run.
			r.Lookup([]int{0}, value.T(int64(3)))
		}
		// Compare Lookup against a full scan for every key.
		for k := int64(0); k < 8; k++ {
			want := make(map[string]int64)
			r.Each(func(rw Row) {
				if rw.Tuple[0].Equal(value.NewInt(k)) {
					want[rw.Tuple.Key()] = rw.Count
				}
			})
			got := make(map[string]int64)
			for _, rw := range r.Lookup([]int{0}, value.T(k)) {
				got[rw.Tuple.Key()] = rw.Count
			}
			if len(got) != len(want) {
				return false
			}
			for key, c := range want {
				if got[key] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMergeDeltaQuickMatchesUnionPlus(t *testing.T) {
	f := func(a, b []struct {
		K uint8
		C int8
	}) bool {
		ra, rb := New(1), New(1)
		for _, x := range a {
			ra.Add(value.T(int64(x.K%16)), int64(x.C))
		}
		for _, x := range b {
			rb.Add(value.T(int64(x.K%16)), int64(x.C))
		}
		u := UnionPlus(ra, rb)
		ra.MergeDelta(rb)
		return Equal(u, ra)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

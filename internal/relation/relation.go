// Package relation implements counted relations: multisets of tuples where
// each tuple carries a signed derivation count, exactly the representation
// of Section 3 of Gupta/Mumick/Subrahmanian (SIGMOD 1993).
//
// Positive counts are numbers of alternative derivations (or multiset
// multiplicities); in delta relations, negative counts denote deleted
// derivations. The ⊎ operator (UnionPlus / MergeDelta) adds counts and drops
// tuples whose counts cancel to zero. Joins multiply counts.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ivm/internal/value"
)

// Row pairs a tuple with its signed derivation count.
type Row struct {
	Tuple value.Tuple
	Count int64
	// key caches the tuple's canonical encoding when the row came out of
	// a relation; Key() falls back to computing it.
	key string
}

// Key returns the row's canonical tuple encoding, cached when the row
// was produced by a Relation.
func (r Row) Key() string {
	if r.key != "" {
		return r.key
	}
	return r.Tuple.Key()
}

// Relation is a counted relation. The zero value is not usable; call New.
// A Relation never stores a row with Count == 0.
//
// Concurrency: any number of goroutines may *read* a Relation
// concurrently (Count/Has/Each/Lookup/Rows), including Lookups that
// lazily build an index — the build is internally synchronized. Mutations
// (Add/Set/Delete/MergeDelta) must not overlap reads or other mutations;
// parallel evaluation therefore writes into per-worker Shards and merges.
type Relation struct {
	arity int
	rows  map[string]Row

	// frozen marks an immutable relation (a published snapshot version):
	// any mutation panics. Lazy index builds remain allowed — they are
	// internally synchronized and do not change the relation's content.
	frozen bool

	// idx holds the lazy hash indexes, keyed by column signature. idxMu
	// guards idx against concurrent lazy builds from reader goroutines;
	// hasIdx lets the mutation hot path skip the lock entirely until the
	// first index exists.
	idx    map[string]*index
	idxMu  sync.RWMutex
	hasIdx atomic.Bool

	// stats holds the lazy per-column distinct sketches (see stats.go),
	// with the same build-once-then-incremental discipline as idx.
	stats    *tableStats
	statsMu  sync.RWMutex
	hasStats atomic.Bool
}

// New returns an empty relation with the given arity. Arity -1 means
// "unknown until the first insert" (useful for generic plumbing).
func New(arity int) *Relation {
	return &Relation{arity: arity, rows: make(map[string]Row)}
}

// FromRows builds a relation from rows, merging duplicate tuples' counts.
func FromRows(arity int, rows []Row) *Relation {
	r := New(arity)
	for _, row := range rows {
		r.Add(row.Tuple, row.Count)
	}
	return r
}

// FromTuples builds a relation where each listed tuple has count 1
// (repeats accumulate).
func FromTuples(arity int, tuples ...value.Tuple) *Relation {
	r := New(arity)
	for _, t := range tuples {
		r.Add(t, 1)
	}
	return r
}

// Arity returns the relation's arity (-1 if still unknown).
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of distinct tuples (not the sum of counts).
func (r *Relation) Len() int { return len(r.rows) }

// TotalCount returns the sum of all counts (the multiset cardinality).
func (r *Relation) TotalCount() int64 {
	var n int64
	for _, row := range r.rows {
		n += row.Count
	}
	return n
}

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.rows) == 0 }

// Count returns the stored count for t (0 if absent).
func (r *Relation) Count(t value.Tuple) int64 {
	return r.rows[t.Key()].Count
}

// Has reports whether t is present with a positive count. This is the
// truth test used for negated subgoals: a tuple is "true" iff count > 0.
func (r *Relation) Has(t value.Tuple) bool {
	return r.rows[t.Key()].Count > 0
}

// Freeze marks the relation immutable: every subsequent Add, Set,
// Delete or MergeDelta panics. Snapshot versions published to
// concurrent readers are frozen so a maintenance bug that touched a
// published relation fails loudly instead of corrupting readers. Lazy
// index builds (Lookup) stay legal; Clone returns a mutable copy.
func (r *Relation) Freeze() { r.frozen = true }

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen }

func (r *Relation) mutable() {
	if r.frozen {
		panic("relation: mutation of a frozen relation (published snapshot versions are immutable)")
	}
}

// Add merges (t, count) into the relation, removing the tuple if the
// resulting count is zero. Adding with count 0 is a no-op.
func (r *Relation) Add(t value.Tuple, count int64) {
	if count == 0 {
		return
	}
	r.mutable()
	if r.arity < 0 {
		r.arity = len(t)
	} else if len(t) != r.arity {
		panic(fmt.Sprintf("relation: arity mismatch: tuple %v into arity-%d relation", t, r.arity))
	}
	k := t.Key()
	row, ok := r.rows[k]
	if !ok {
		r.rows[k] = Row{Tuple: t, Count: count, key: k}
		r.idxAdd(t, count)
		r.statsAdd(t, 1)
		return
	}
	nc := row.Count + count
	if nc == 0 {
		delete(r.rows, k)
		r.statsAdd(t, -1)
	} else {
		row.Count = nc
		r.rows[k] = row
	}
	r.idxAdd(t, count)
}

// Set forces the count of t to exactly count (removing it when 0).
func (r *Relation) Set(t value.Tuple, count int64) {
	cur := r.rows[t.Key()].Count
	r.Add(t, count-cur)
}

// Delete removes the tuple entirely regardless of count.
func (r *Relation) Delete(t value.Tuple) {
	r.mutable()
	k := t.Key()
	row, ok := r.rows[k]
	if !ok {
		return
	}
	delete(r.rows, k)
	r.idxAdd(t, -row.Count)
	r.statsAdd(t, -1)
}

// Each calls f for every row. Iteration order is unspecified. f must not
// mutate the relation.
func (r *Relation) Each(f func(Row)) {
	for _, row := range r.rows {
		f(row)
	}
}

// Rows returns all rows in unspecified order.
func (r *Relation) Rows() []Row {
	out := make([]Row, 0, len(r.rows))
	for _, row := range r.rows {
		out = append(out, row)
	}
	return out
}

// SortedRows returns rows ordered lexicographically by tuple — handy for
// deterministic output and golden tests.
func (r *Relation) SortedRows() []Row {
	out := r.Rows()
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Clone returns a deep-enough copy (tuples are immutable and shared).
// Indexes are not copied.
func (r *Relation) Clone() *Relation {
	c := New(r.arity)
	for k, row := range r.rows {
		c.rows[k] = row
	}
	return c
}

// MergeDelta folds delta into r using the ⊎ operator of Section 3:
// counts add, zero-count tuples vanish. r is modified in place.
func (r *Relation) MergeDelta(delta *Relation) {
	for _, row := range delta.rows {
		r.Add(row.Tuple, row.Count)
	}
}

// UnionPlus returns a ⊎ b as a fresh relation, leaving both inputs intact.
func UnionPlus(a, b *Relation) *Relation {
	out := a.Clone()
	out.MergeDelta(b)
	return out
}

// Negate returns a copy of r with all counts sign-flipped (the deletion
// image of a relation).
func (r *Relation) Negate() *Relation {
	out := New(r.arity)
	for k, row := range r.rows {
		out.rows[k] = Row{Tuple: row.Tuple, Count: -row.Count, key: k}
	}
	return out
}

// ToSet returns the set image of r: every tuple with positive count maps
// to count 1 (tuples with non-positive counts are dropped). This is the
// set(·) function of Algorithm 4.1 statement (2).
func (r *Relation) ToSet() *Relation {
	out := New(r.arity)
	for k, row := range r.rows {
		if row.Count > 0 {
			out.rows[k] = Row{Tuple: row.Tuple, Count: 1, key: k}
		}
	}
	return out
}

// SetDiff returns set(a) − set(b) as a signed delta: tuples in a but not b
// get +1, tuples in b but not a get −1. This implements statement (2) of
// Algorithm 4.1 (the cascade delta under set semantics).
func SetDiff(a, b *Relation) *Relation {
	out := New(pickArity(a, b))
	for k, row := range a.rows {
		if row.Count > 0 && b.rows[k].Count <= 0 {
			out.rows[k] = Row{Tuple: row.Tuple, Count: 1, key: k}
		}
	}
	for k, row := range b.rows {
		if row.Count > 0 && a.rows[k].Count <= 0 {
			out.rows[k] = Row{Tuple: row.Tuple, Count: -1, key: k}
		}
	}
	return out
}

// Equal reports whether two relations contain exactly the same tuples with
// the same counts.
func Equal(a, b *Relation) bool {
	if len(a.rows) != len(b.rows) {
		return false
	}
	for k, row := range a.rows {
		if b.rows[k].Count != row.Count {
			return false
		}
	}
	return true
}

// EqualAsSets reports whether a and b have the same positive-count tuples.
func EqualAsSets(a, b *Relation) bool {
	for k, row := range a.rows {
		if row.Count > 0 && b.rows[k].Count <= 0 {
			return false
		}
	}
	for k, row := range b.rows {
		if row.Count > 0 && a.rows[k].Count <= 0 {
			return false
		}
	}
	return true
}

func pickArity(a, b *Relation) int {
	if a.arity >= 0 {
		return a.arity
	}
	return b.arity
}

// String renders the relation like the paper: {ab 2, mn -1} with tuples in
// sorted order.
func (r *Relation) String() string {
	rows := r.SortedRows()
	var sb strings.Builder
	sb.WriteByte('{')
	for i, row := range rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(row.Tuple.String())
		if row.Count != 1 {
			fmt.Fprintf(&sb, " %d", row.Count)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

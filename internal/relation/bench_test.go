package relation

import (
	"fmt"
	"testing"

	"ivm/internal/value"
)

func buildRelation(n int) *Relation {
	r := New(2)
	for i := 0; i < n; i++ {
		r.Add(value.T(fmt.Sprintf("s%d", i%100), fmt.Sprintf("d%d", i)), 1)
	}
	return r
}

func BenchmarkAdd(b *testing.B) {
	r := New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(value.T(fmt.Sprintf("s%d", i%1000), fmt.Sprintf("d%d", i%977)), 1)
	}
}

func BenchmarkCountLookup(b *testing.B) {
	r := buildRelation(10000)
	t := value.T("s5", "d105")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Count(t) != 1 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkIndexedLookup(b *testing.B) {
	r := buildRelation(10000)
	key := value.T("s7")
	r.Lookup([]int{0}, key) // build the index outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Lookup([]int{0}, key)) == 0 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkOverlayLookup(b *testing.B) {
	base := buildRelation(10000)
	delta := New(2)
	for i := 0; i < 100; i++ {
		delta.Add(value.T(fmt.Sprintf("s%d", i%100), fmt.Sprintf("d%d", i)), -1)
	}
	o := Overlay(base, delta)
	key := value.T("s7")
	o.Lookup([]int{0}, key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Lookup([]int{0}, key)
	}
}

func BenchmarkMergeDelta(b *testing.B) {
	delta := New(2)
	for i := 0; i < 100; i++ {
		delta.Add(value.T(fmt.Sprintf("x%d", i), "y"), 1)
	}
	undo := delta.Negate()
	r := buildRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			r.MergeDelta(delta)
		} else {
			r.MergeDelta(undo)
		}
	}
}

func BenchmarkToSet(b *testing.B) {
	r := buildRelation(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ToSet()
	}
}

func BenchmarkTupleKey(b *testing.B) {
	t := value.T("some-node-name", int64(123456), 2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Key()
	}
}

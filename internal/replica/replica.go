// Package replica is the follower half of ivmd replication: it tails a
// primary's /v1/replicate stream and maintains a local Views that
// converges to the primary's state version-for-version.
//
// Protocol (see internal/storage repl.go and DESIGN.md §14): the
// follower connects, bootstraps from the leading 'S' (full state)
// record, then applies 'D' (delta) records in version order. Resumes
// after a disconnect reconnect with ?from=<applied version>; the
// primary replays from its window, backfills from its WAL, or ships a
// fresh 'S'. Overlapping records (version ≤ applied) are skipped —
// re-apply is idempotent by version. A version gap is never skipped
// over: it increments replica_divergence_total and forces a reconnect
// so the primary re-backfills the missing range.
//
// Failover (DESIGN.md §15): every record carries the leader's fencing
// epoch. The follower tracks the highest epoch it has seen and fences
// anything older (replica_fenced_total) — a revived pre-failover
// primary cannot feed it stale deltas. When the upstream dies or
// fences, the follower re-resolves the leader by probing its upstream
// and Options.Seeds via /v1/info, following the highest-epoch primary
// (one hop through a follower's leader_url), and Promote turns this
// follower into the primary at epoch+1.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
	"ivm/internal/storage"
)

// Options configures a follower. The zero value is usable.
type Options struct {
	// Retry paces reconnects after a dropped stream and bounds how many
	// consecutive connection failures the follower tolerates before
	// giving up (client.DefaultRetryPolicy when zero; a successful
	// connect resets the count).
	Retry client.RetryPolicy
	// StallTimeout forces a reconnect when the stream delivers nothing —
	// not even a heartbeat — for this long, catching half-dead
	// connections TCP alone would sit on (default 15s).
	StallTimeout time.Duration
	// HTTPClient overrides the transport (nil = dial/header timeouts but
	// no overall request timeout, which the endless stream needs).
	HTTPClient *http.Client
	// ExtraOptions are engine options (parallelism, tracing, ...) applied
	// when materializing the follower's views. Strategy and semantics
	// always follow the primary's — derived state is bit-identical only
	// under the same engine configuration.
	ExtraOptions []ivm.Option
	// Seeds are additional cluster member base URLs probed (besides the
	// current upstream) when the follower re-resolves its leader — after
	// a fence rejection or a dead upstream. Each probe asks /v1/info and
	// the follower adopts the highest-epoch primary at or above its own
	// epoch, hopping once through a follower's advertised leader_url.
	Seeds []string
	// OnLeaderChange fires (from the tail goroutine) whenever the
	// follower re-resolves its upstream to a different URL. The serving
	// layer hooks this to retarget write forwarding.
	OnLeaderChange func(url string)
	// Logf receives one line per lifecycle event (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	// Normalize the retry policy here (client normalizes internally, but
	// its helper is unexported): any unset field takes the default.
	if o.Retry.MaxAttempts < 1 {
		o.Retry.MaxAttempts = client.DefaultRetryPolicy.MaxAttempts
	}
	if o.Retry.BaseDelay <= 0 {
		o.Retry.BaseDelay = client.DefaultRetryPolicy.BaseDelay
	}
	if o.Retry.MaxDelay < o.Retry.BaseDelay {
		o.Retry.MaxDelay = client.DefaultRetryPolicy.MaxDelay
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 15 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
		}}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Replica is a running follower. Views() serves lock-free local reads
// while the tail loop applies the primary's commits in the background.
type Replica struct {
	opts  Options
	reg   *metrics.Registry
	v     *ivm.Views
	probe *http.Client // short-timeout client for /v1/info discovery

	applied    atomic.Uint64 // highest version applied locally
	leader     atomic.Uint64 // highest primary version seen on the wire
	epoch      atomic.Uint64 // highest fencing epoch seen (0 = none yet)
	lastRecord atomic.Int64  // unixnano of the last record received

	gLagVersions *metrics.Gauge
	gLagMillis   *metrics.Gauge
	gLagSeconds  *metrics.Gauge
	gApplied     *metrics.Gauge
	gLeader      *metrics.Gauge
	gEpoch       *metrics.Gauge
	cReconnects  *metrics.Counter
	cRecords     *metrics.Counter
	cResets      *metrics.Counter
	cDivergence  *metrics.Counter
	cFenced      *metrics.Counter

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu  sync.Mutex
	url string // current upstream; moves when the leader is re-resolved
	err error
}

// Start connects to the primary at primaryURL, bootstraps the
// follower's views from the leading state record (blocking until the
// local state is live), and launches the tail loop. The returned
// replica keeps converging until Stop, a version divergence, a program
// change, or Options.Retry-many consecutive failed reconnects.
func Start(primaryURL string, opts Options) (*Replica, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := metrics.NewRegistry()
	r := &Replica{
		url:          strings.TrimRight(primaryURL, "/"),
		opts:         opts,
		reg:          reg,
		probe:        &http.Client{Timeout: 2 * time.Second},
		gLagVersions: reg.Gauge("replica_lag_versions"),
		gLagMillis:   reg.Gauge("replica_lag_millis"),
		gLagSeconds:  reg.Gauge("replica_lag_seconds"),
		gApplied:     reg.Gauge("replica_applied_version"),
		gLeader:      reg.Gauge("replica_leader_version"),
		gEpoch:       reg.Gauge("replica_epoch"),
		cReconnects:  reg.Counter("replica_reconnects_total"),
		cRecords:     reg.Counter("replica_records_total"),
		cResets:      reg.Counter("replica_resets_total"),
		cDivergence:  reg.Counter("replica_divergence_total"),
		cFenced:      reg.Counter("replica_fenced_total"),
		ctx:          ctx,
		cancel:       cancel,
		done:         make(chan struct{}),
	}

	// Bootstrap: connect (retrying under the policy) and consume records
	// until the state record arrives, so Start returns a live Views.
	var resp *http.Response
	var br *bufio.Reader
	p := opts.Retry
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, p.Backoff(attempt, 0)); err != nil {
				cancel()
				return nil, fmt.Errorf("replica: bootstrap canceled: %w (last attempt: %v)", err, lastErr)
			}
		}
		if attempt >= p.MaxAttempts {
			cancel()
			return nil, fmt.Errorf("replica: bootstrap gave up after %d attempts: %w", p.MaxAttempts, lastErr)
		}
		rp, b, err := r.connect(0, false)
		if err != nil {
			lastErr = err
			continue
		}
		resp, br = rp, b
		break
	}
	if err := r.bootstrap(br); err != nil {
		resp.Body.Close()
		cancel()
		return nil, err
	}
	r.opts.Logf("replica: bootstrapped from %s at version %d (epoch %d)", r.LeaderURL(), r.applied.Load(), r.Epoch())
	go r.run(resp, br)
	return r, nil
}

// Views returns the follower's local views. Valid (and stable) once
// Start returns; reads are lock-free snapshots exactly as on a primary.
func (r *Replica) Views() *ivm.Views { return r.v }

// Registry returns the follower's replica_* metrics registry, for
// serving alongside the engine and server series.
func (r *Replica) Registry() *metrics.Registry { return r.reg }

// Applied returns the highest primary version applied locally.
func (r *Replica) Applied() uint64 { return r.applied.Load() }

// Epoch returns the highest fencing epoch this follower has seen on the
// wire (at least 1 once bootstrapped).
func (r *Replica) Epoch() uint64 {
	if e := r.epoch.Load(); e != 0 {
		return e
	}
	return 1
}

// LeaderURL returns the upstream this follower currently tails — it
// moves when the leader is re-resolved after a failover.
func (r *Replica) LeaderURL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.url
}

func (r *Replica) setLeaderURL(u string) {
	r.mu.Lock()
	r.url = u
	r.mu.Unlock()
}

// Done is closed when the tail loop exits; Err then reports why (nil
// after a clean Stop).
func (r *Replica) Done() <-chan struct{} { return r.done }

// Err returns the terminal replication error, if any.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *Replica) setErr(err error) {
	r.mu.Lock()
	if r.err == nil && err != nil {
		r.err = err
	}
	r.mu.Unlock()
}

// Stop ends replication (in-flight reads through Views keep working;
// the views just stop advancing) and waits for the tail loop to exit.
func (r *Replica) Stop() {
	r.cancel()
	<-r.done
}

// connect opens one replication stream, resuming after from when
// resume is set. The follower's known fencing epoch rides the query
// string: a deposed primary refuses the handshake outright (409)
// instead of streaming records the fence would drop one by one.
func (r *Replica) connect(from uint64, resume bool) (*http.Response, *bufio.Reader, error) {
	u := r.LeaderURL() + "/v1/replicate?epoch=" + strconv.FormatUint(r.Epoch(), 10)
	if resume {
		u += "&from=" + strconv.FormatUint(from, 10)
	}
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := r.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, nil, fmt.Errorf("replica: %s answered %d: %s", u, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	r.lastRecord.Store(time.Now().UnixNano())
	return resp, bufio.NewReader(resp.Body), nil
}

// bootstrap consumes the stream until the leading state record and
// builds the local views from it.
func (r *Replica) bootstrap(br *bufio.Reader) error {
	for {
		rec, err := storage.ReadReplRecord(br)
		if err != nil {
			return fmt.Errorf("replica: reading bootstrap state: %w", err)
		}
		r.lastRecord.Store(time.Now().UnixNano())
		switch rec.Kind {
		case storage.ReplKindHeartbeat:
			continue
		case storage.ReplKindState:
			st, err := storage.DecodeReplState(rec.State)
			if err != nil {
				return err
			}
			v, err := ivm.ViewsFromReplicaState(ivm.ReplicaState{
				Program:   st.Program,
				Hidden:    st.Hidden,
				Facts:     st.Facts,
				Strategy:  st.Strategy,
				Semantics: st.Semantics,
			}, r.opts.ExtraOptions...)
			if err != nil {
				return fmt.Errorf("replica: building views from state: %w", err)
			}
			v.SeedVersion(rec.Version)
			r.v = v
			r.admitEpoch(rec) // first record: adopts the leader's epoch
			r.advance(rec)
			return nil
		default:
			return fmt.Errorf("replica: stream led with %q record, want state", rec.Kind)
		}
	}
}

// advance records progress to rec's version and refreshes the lag
// gauges.
func (r *Replica) advance(rec storage.ReplRecord) {
	if rec.Kind != storage.ReplKindHeartbeat {
		r.applied.Store(rec.Version)
		r.gApplied.Set(int64(rec.Version))
	}
	if rec.Version > r.leader.Load() {
		r.leader.Store(rec.Version)
		r.gLeader.Set(int64(rec.Version))
	}
	lag := int64(r.leader.Load()) - int64(r.applied.Load())
	if lag < 0 {
		lag = 0
	}
	r.gLagVersions.Set(lag)
	if rec.UnixNano > 0 {
		ms := (time.Now().UnixNano() - rec.UnixNano) / int64(time.Millisecond)
		if ms < 0 {
			ms = 0
		}
		r.gLagMillis.Set(ms)
		r.gLagSeconds.Set(ms / 1000)
	}
}

// run is the tail loop: consume the stream, reconnect on retryable
// ends, stop on fatal ones.
func (r *Replica) run(resp *http.Response, br *bufio.Reader) {
	defer close(r.done)
	p := r.opts.Retry
	for {
		err := r.tail(resp, br)
		if r.ctx.Err() != nil {
			return
		}
		if err != nil {
			r.setErr(err)
			r.opts.Logf("replica: stopping: %v", err)
			return
		}
		// Retryable end: re-resolve the leader (the upstream may be dead
		// or deposed), then reconnect from the applied version.
		var lastErr error
		reconnected := false
		for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
			if err := sleepCtx(r.ctx, p.Backoff(attempt, 0)); err != nil {
				return
			}
			r.resolveLeader()
			rp, b, err := r.connect(r.applied.Load(), true)
			if err != nil {
				lastErr = err
				continue
			}
			resp, br = rp, b
			r.cReconnects.Inc()
			reconnected = true
			break
		}
		if !reconnected {
			r.setErr(fmt.Errorf("replica: reconnect gave up after %d attempts: %w", p.MaxAttempts, lastErr))
			r.opts.Logf("replica: stopping: %v", r.Err())
			return
		}
	}
}

// tail applies one connection's records. A nil return asks run to
// reconnect (stream ended, damaged, stalled, or gapped); an error is
// fatal for the follower.
func (r *Replica) tail(resp *http.Response, br *bufio.Reader) error {
	// Watchdog: a stream that goes silent past StallTimeout (heartbeats
	// included) is force-closed so the blocked read returns.
	stallStop := make(chan struct{})
	defer close(stallStop)
	go func() {
		t := time.NewTimer(r.opts.StallTimeout)
		defer t.Stop()
		for {
			select {
			case <-stallStop:
				return
			case <-r.ctx.Done():
				resp.Body.Close()
				return
			case <-t.C:
				idle := time.Since(time.Unix(0, r.lastRecord.Load()))
				if idle >= r.opts.StallTimeout {
					r.opts.Logf("replica: stream silent for %s, reconnecting", idle.Round(time.Millisecond))
					resp.Body.Close()
					return
				}
				t.Reset(r.opts.StallTimeout - idle)
			}
		}
	}()
	defer resp.Body.Close()

	for {
		rec, err := storage.ReadReplRecord(br)
		if err != nil {
			if err != io.EOF && r.ctx.Err() == nil {
				r.opts.Logf("replica: stream broke: %v", err)
			}
			return nil // reconnect
		}
		r.lastRecord.Store(time.Now().UnixNano())
		r.cRecords.Inc()
		if !r.admitEpoch(rec) {
			// A stale-epoch record: the upstream was deposed while we
			// were connected. Drop the stream; the reconnect path
			// re-resolves the real leader.
			return nil
		}
		switch rec.Kind {
		case storage.ReplKindHeartbeat:
			r.advance(rec)
		case storage.ReplKindState:
			st, err := storage.DecodeReplState(rec.State)
			if err != nil {
				r.opts.Logf("replica: bad state record: %v", err)
				return nil // reconnect; a fresh stream re-sends it
			}
			if st.Program != r.v.ProgramSource() {
				return fmt.Errorf("replica: primary's program changed; restart the follower to pick it up")
			}
			if err := r.v.ResetToReplicaState(ivm.ReplicaState{
				Program:   st.Program,
				Hidden:    st.Hidden,
				Facts:     st.Facts,
				Strategy:  st.Strategy,
				Semantics: st.Semantics,
			}, rec.Version); err != nil {
				return fmt.Errorf("replica: applying state reset: %w", err)
			}
			r.cResets.Inc()
			r.advance(rec)
			r.opts.Logf("replica: state reset to version %d", rec.Version)
		case storage.ReplKindDelta:
			applied := r.applied.Load()
			switch {
			case rec.Version <= applied:
				// Overlap after a resume: already applied, skip — the
				// version stamp is the idempotency key.
			case rec.Version == applied+1:
				// Replicated applies carry the primary's idempotency keys
				// so the dedup window survives a failover: a client retry
				// that lands here after promotion still dedups.
				cs, err := r.v.ApplyScriptReplicated(rec.Script, rec.Keys)
				if err != nil {
					return fmt.Errorf("replica: applying version %d: %w", rec.Version, err)
				}
				if cs.Version() != rec.Version {
					r.cDivergence.Inc()
					return fmt.Errorf("replica: applied record %d but published version %d — replica diverged", rec.Version, cs.Version())
				}
				r.advance(rec)
			default:
				// A gap. Never skip over it: reconnect from the applied
				// version and make the primary re-backfill the range.
				r.cDivergence.Inc()
				r.opts.Logf("replica: gap: got version %d after %d, re-backfilling", rec.Version, applied)
				return nil
			}
		}
	}
}

// admitEpoch vets rec against the highest fencing epoch this follower
// has seen. A record from an older epoch is fenced: counted, logged,
// and inadmissible — the caller drops the connection. A record from a
// newer epoch advances the follower's epoch (a promotion happened) and
// mirrors it into the local views, so a later promotion of this
// follower starts above it. Only the tail goroutine calls this, so the
// load/store pair is race-free.
func (r *Replica) admitEpoch(rec storage.ReplRecord) bool {
	known := r.epoch.Load()
	if rec.Epoch < known {
		r.cFenced.Inc()
		r.opts.Logf("replica: fenced stale record: epoch %d < %d (kind %q, version %d)",
			rec.Epoch, known, rec.Kind, rec.Version)
		return false
	}
	if rec.Epoch > known {
		r.epoch.Store(rec.Epoch)
		r.gEpoch.Set(int64(rec.Epoch))
		if r.v != nil {
			r.v.SetFenceEpoch(rec.Epoch)
		}
		if known != 0 {
			r.opts.Logf("replica: leader epoch moved %d -> %d", known, rec.Epoch)
		}
	}
	return true
}

// resolveLeader probes the current upstream and Options.Seeds for the
// cluster's leader via /v1/info and retargets the tail at the
// highest-epoch primary at or above the follower's own epoch. A
// follower answering a probe contributes its advertised leader_url as
// one extra hop. No reachable acceptable primary leaves the upstream
// unchanged (the plain reconnect loop keeps trying it).
func (r *Replica) resolveLeader() {
	cur := r.LeaderURL()
	known := r.Epoch()
	cands := append([]string{cur}, r.opts.Seeds...)
	seen := make(map[string]bool, len(cands)+1)
	var bestURL string
	var bestEpoch uint64
	for i := 0; i < len(cands); i++ {
		u := strings.TrimRight(cands[i], "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		info, err := r.probeInfo(u)
		if err != nil {
			continue
		}
		switch {
		case info.Role == "primary" && info.Epoch >= known && info.Epoch > bestEpoch:
			bestURL, bestEpoch = u, info.Epoch
		case info.Role == "follower" && info.LeaderURL != "":
			cands = append(cands, info.LeaderURL)
		}
	}
	if bestURL != "" && bestURL != cur {
		r.setLeaderURL(bestURL)
		r.opts.Logf("replica: leader re-resolved to %s (epoch %d)", bestURL, bestEpoch)
		if r.opts.OnLeaderChange != nil {
			r.opts.OnLeaderChange(bestURL)
		}
	}
}

// probeInfo asks one node for its /v1/info with a short timeout.
func (r *Replica) probeInfo(base string) (client.Info, error) {
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, base+"/v1/info", nil)
	if err != nil {
		return client.Info{}, err
	}
	resp, err := r.probe.Do(req)
	if err != nil {
		return client.Info{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return client.Info{}, fmt.Errorf("replica: %s/v1/info answered %d", base, resp.StatusCode)
	}
	var info client.Info
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&info); err != nil {
		return client.Info{}, err
	}
	return info, nil
}

// Promote turns this follower into a primary: the tail loop is stopped
// (waiting for an in-flight record to finish applying) and the fencing
// epoch is raised one past every epoch this follower has seen — the
// fence that keeps a revived old primary from splitting the brain. The
// serving layer must then clear its leader URL so applies commit
// locally; cmd/ivmd wires both halves to POST /v1/promote. After
// Promote the replica's Done channel is closed with a nil Err.
//
// Promotion does not verify this follower was the most caught-up —
// that is the operator's (or orchestrator's) check, via
// replica_applied_version against the acked writes. See
// docs/OPERATIONS.md.
func (r *Replica) Promote() (uint64, error) {
	r.cancel()
	<-r.done
	epoch := r.v.FenceEpoch()
	if e := r.epoch.Load(); e > epoch {
		epoch = e
	}
	epoch++
	if err := r.v.SetFenceEpoch(epoch); err != nil {
		return 0, err
	}
	r.epoch.Store(epoch)
	r.gEpoch.Set(int64(epoch))
	r.opts.Logf("replica: promoted to primary at epoch %d (version %d)", epoch, r.applied.Load())
	return epoch, nil
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package replica

// Failover tests: the fencing-epoch guard on the tail loop (a stale 'D'
// record from a deposed primary is counted and dropped, never applied)
// and the full chaos drill — kill the primary mid-load, promote a
// follower, revive the old primary, and prove no split brain and no
// lost acked apply.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
	"ivm/internal/server"
	"ivm/internal/storage"
)

// fencePrimary scripts a deposed-primary stream: connection 1 leads
// with state at epoch 2, one good delta, then a delta stamped epoch 1 —
// as if a revived pre-failover primary had hijacked the stream. The
// follower must fence it and reconnect; connection 2 re-serves the
// record at the real epoch.
type fencePrimary struct {
	t      *testing.T
	state  storage.ReplState
	base   uint64
	conns  atomic.Int64
	epochs chan string // ?epoch= of each connection
}

func (f *fencePrimary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn := f.conns.Add(1)
	f.epochs <- r.URL.Query().Get("epoch")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.(http.Flusher).Flush()

	send := func(rec storage.ReplRecord) {
		f.t.Helper()
		buf, err := storage.AppendReplRecord(nil, rec)
		if err != nil {
			f.t.Error(err)
			return
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		w.(http.Flusher).Flush()
	}
	delta := func(version, epoch uint64, script string) storage.ReplRecord {
		return storage.ReplRecord{
			Kind:     storage.ReplKindDelta,
			Epoch:    epoch,
			Version:  version,
			UnixNano: time.Now().UnixNano(),
			Script:   script,
		}
	}

	switch conn {
	case 1:
		payload, err := storage.EncodeReplState(f.state)
		if err != nil {
			f.t.Error(err)
			return
		}
		send(storage.ReplRecord{Kind: storage.ReplKindState, Epoch: 2, Version: f.base, UnixNano: time.Now().UnixNano(), State: payload})
		send(delta(f.base+1, 2, "+link(c,d)."))
		// The stale record: one epoch behind what the follower has seen.
		// It must be fenced, not applied, and the follower cuts the
		// stream (we hold it open to prove the cut is theirs).
		send(delta(f.base+2, 1, "+link(POISON,POISON)."))
		<-r.Context().Done()
	default:
		// The reconnect, carrying the fenced epoch: re-serve version
		// base+2 as the real epoch-2 leader would.
		send(delta(f.base+1, 2, "+link(c,d)."))
		send(delta(f.base+2, 2, "+link(d,e)."))
		for {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(20 * time.Millisecond):
				send(storage.ReplRecord{Kind: storage.ReplKindHeartbeat, Epoch: 2, Version: f.base + 2, UnixNano: time.Now().UnixNano()})
			}
		}
	}
}

// TestReplicaFencesStaleEpoch: a 'D' record carrying an older fencing
// epoch is rejected by the tail loop — counted in replica_fenced_total,
// never applied — and the follower reconnects with its known epoch in
// the handshake.
func TestReplicaFencesStaleEpoch(t *testing.T) {
	authority := buildPrimaryViews(t)
	defer authority.Shutdown()
	snap := authority.Snapshot()
	st := snap.ReplicaState()

	fake := &fencePrimary{
		t:    t,
		base: snap.Version(),
		state: storage.ReplState{
			Program:   st.Program,
			Hidden:    st.Hidden,
			Facts:     st.Facts,
			Strategy:  st.Strategy,
			Semantics: st.Semantics,
		},
		epochs: make(chan string, 8),
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate", fake)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Start(ts.URL, Options{Retry: fastRetry, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	// Connection 1 handshakes with epoch 1 (nothing seen yet).
	if got := <-fake.epochs; got != "1" {
		t.Fatalf("bootstrap handshake epoch %q, want 1", got)
	}
	// The fence forces a reconnect that must carry the learned epoch 2.
	select {
	case got := <-fake.epochs:
		if got != "2" {
			t.Fatalf("reconnect handshake epoch %q, want 2 (learned from the stream)", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never reconnected after the stale-epoch record")
	}

	waitApplied(t, rep, fake.base+2, 10*time.Second)

	reg := rep.Registry().Snapshot()
	if got := reg.Counter("replica_fenced_total"); got != 1 {
		t.Fatalf("replica_fenced_total = %d, want 1", got)
	}
	if got := reg.Counter("replica_divergence_total"); got != 0 {
		t.Fatalf("replica_divergence_total = %d, want 0 — a fence is not a gap", got)
	}
	if got := rep.Epoch(); got != 2 {
		t.Fatalf("follower epoch %d, want 2", got)
	}
	// The poisoned record must not have been applied.
	if n := rep.Views().Snapshot().Count("link", "POISON", "POISON"); n != 0 {
		t.Fatal("fenced record was applied")
	}
	// The local views mirror the stream's epoch for a later promotion.
	if got := rep.Views().FenceEpoch(); got != 2 {
		t.Fatalf("views fence epoch %d, want 2", got)
	}
}

// TestFailoverChaos is the cluster drill from DESIGN.md §15: a
// store-bound primary takes keyed writes forwarded through a follower,
// dies mid-load, a caught-up follower is promoted at epoch+1, the
// second follower re-resolves to it via seeds, the revived old primary
// is fenced on both its serving surfaces, and the survivors converge
// bit-identically with every acked apply present — exactly once.
func TestFailoverChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("failover chaos run skipped in -short")
	}
	dirA := t.TempDir()
	build := func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	}
	vA, _, err := ivm.OpenStore(dirA, build, ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	srvA := server.New(vA, server.Options{OwnViews: true, ReplWindow: 256, ReplHeartbeat: 20 * time.Millisecond, Logf: t.Logf})
	if err := srvA.Start(); err != nil {
		t.Fatal(err)
	}
	shutA := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srvA.Shutdown(ctx)
	}

	// F1: the promotable follower — its server wires POST /v1/promote to
	// the replica's Promote, exactly as cmd/ivmd does.
	rep1, err := Start(srvA.URL(), Options{Retry: fastRetry, StallTimeout: 2 * time.Second, Logf: t.Logf})
	if err != nil {
		shutA()
		t.Fatal(err)
	}
	defer rep1.Stop()
	srv1 := startServer(t, rep1.Views(), server.Options{
		LeaderURL:      srvA.URL(),
		ReplWindow:     256,
		ReplHeartbeat:  20 * time.Millisecond,
		MinVersionWait: 5 * time.Second,
		Promote:        rep1.Promote,
		ExtraMetrics:   []*metrics.Registry{rep1.Registry()},
		Logf:           t.Logf,
	})

	// F2: the forwarding front door, seeded so it can find the new
	// leader after the old one dies.
	var srv2Ptr atomic.Pointer[server.Server]
	rep2, err := Start(srvA.URL(), Options{
		Retry:        client.RetryPolicy{MaxAttempts: 60, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond},
		StallTimeout: 2 * time.Second,
		Seeds:        []string{srvA.URL(), srv1.URL()},
		OnLeaderChange: func(u string) {
			if s := srv2Ptr.Load(); s != nil {
				s.SetLeaderURL(u)
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		shutA()
		t.Fatal(err)
	}
	defer rep2.Stop()
	srv2 := startServer(t, rep2.Views(), server.Options{
		LeaderURL:    srvA.URL(),
		ExtraMetrics: []*metrics.Registry{rep2.Registry()},
		Logf:         t.Logf,
	})
	srv2Ptr.Store(srv2)

	ctx := context.Background()
	front := client.New(srv2.URL(), nil) // every write goes through F2's forwarding
	type write struct{ src, dst string }
	acked := make(map[string]write) // idempotency key -> the row it inserted
	var maxAcked uint64
	apply := func(key string, w write) {
		t.Helper()
		res, err := front.ApplyWithKey(ctx, key, fmt.Sprintf("+link(%s,%s).", w.src, w.dst))
		if err != nil {
			t.Fatalf("forwarded apply %s: %v", key, err)
		}
		acked[key] = w
		if res.Version > maxAcked {
			maxAcked = res.Version
		}
	}

	// Phase A: keyed load through the forwarding path while A leads.
	for i := 0; i < 30; i++ {
		apply(fmt.Sprintf("phaseA-%d", i), write{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)})
	}
	// The wedge: acked before the failover, retried after it — the
	// promoted leader must dedup it from its replicated key window.
	apply("wedge", write{"wedge_src", "wedge_dst"})

	// Kill the primary mid-load. Graceful shutdown drains the streams,
	// so every acked version reaches the connected followers.
	if err := shutA(); err != nil {
		t.Fatal(err)
	}

	// A write into the leaderless window fails closed (503, retriable).
	fastFront := client.New(srv2.URL(), nil)
	fastFront.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 1})
	if _, err := fastFront.ApplyWithKey(ctx, "orphan", "+link(orphan_src,orphan_dst)."); err == nil {
		t.Fatal("apply succeeded with no live leader")
	} else if got := client.StatusOf(err); got != http.StatusServiceUnavailable {
		t.Fatalf("leaderless apply status %d, want 503", got)
	}

	// Promote F1 once it holds everything that was acked.
	waitApplied(t, rep1, maxAcked, 15*time.Second)
	pres, err := client.New(srv1.URL(), nil).Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Promoted || pres.Role != "primary" || pres.Epoch != 2 {
		t.Fatalf("promote answered %+v, want promoted primary at epoch 2", pres)
	}
	// Idempotent: promoting a primary is a no-op report, not an error.
	if again, err := client.New(srv1.URL(), nil).Promote(ctx); err != nil || again.Promoted || again.Epoch != 2 {
		t.Fatalf("second promote answered %+v, %v; want non-promoted primary at epoch 2", again, err)
	}
	if got := rep1.Views().FenceEpoch(); got != 2 {
		t.Fatalf("promoted views at fence epoch %d, want 2", got)
	}

	// F2 must re-resolve its upstream to F1 via the seed list and
	// retarget its forwarding proxy.
	deadline := time.Now().Add(15 * time.Second)
	for srv2.LeaderURL() != srv1.URL() {
		if time.Now().After(deadline) {
			t.Fatalf("F2 still forwards to %q, want %q", srv2.LeaderURL(), srv1.URL())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The wedge retry: same key, same script, new leader. The replicated
	// key window must answer it deduped — not apply it twice.
	res, err := front.ApplyWithKey(ctx, "wedge", "+link(wedge_src,wedge_dst).")
	if err != nil {
		t.Fatalf("wedge retry after failover: %v", err)
	}
	if !res.Deduped {
		t.Fatal("wedge retry was re-applied, not deduped — exactly-once broke across the failover")
	}
	// The orphan retry commits now that a leader exists.
	apply("orphan", write{"orphan_src", "orphan_dst"})

	// Phase B: more keyed load through F2, now forwarded to F1.
	for i := 0; i < 20; i++ {
		apply(fmt.Sprintf("phaseB-%d", i), write{fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i)})
	}

	// Revive the old primary from its own store. It comes back at its
	// persisted epoch 1 — a deposed leader that must be fenced.
	vA2, _, err := ivm.OpenStore(dirA, build, ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	if got := vA2.FenceEpoch(); got != 1 {
		t.Fatalf("revived primary at fence epoch %d, want its persisted 1", got)
	}
	srvA2 := startServer(t, vA2, server.Options{OwnViews: true, Logf: t.Logf})
	beforeRevived := vA2.Snapshot().Version()

	// Fence check 1: an epoch-2 follower's replication handshake is
	// refused at connect — the deposed primary never streams stale data.
	resp, err := http.Get(srvA2.URL() + "/v1/replicate?epoch=2&from=" + strconv.FormatUint(beforeRevived, 10))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("revived primary answered the epoch-2 handshake with %d, want 409", resp.StatusCode)
	}

	// Fence check 2: a forwarded apply stamped with the cluster's epoch
	// is refused — the deposed primary cannot commit writes the real
	// cluster would never see.
	req, err := http.NewRequest(http.MethodPost, srvA2.URL()+"/v1/apply", strings.NewReader("+link(split,brain)."))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Ivm-Epoch", "2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("revived primary accepted an epoch-2 apply with %d, want 409", resp.StatusCode)
	}
	if got := vA2.Snapshot().Version(); got != beforeRevived {
		t.Fatalf("fenced apply still committed on the revived primary: version %d -> %d", beforeRevived, got)
	}
	m, err := client.New(srvA2.URL(), nil).Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["replica_fenced_total"] < 2 {
		t.Fatalf("revived primary's replica_fenced_total = %d, want >= 2 (loud rejection)", m["replica_fenced_total"])
	}

	// Convergence: F2 catches up to everything F1 acked and the two
	// survivors are bit-identical at epoch 2 with zero divergence.
	waitApplied(t, rep2, maxAcked, 30*time.Second)
	assertConverged(t, rep1.Views().Snapshot(), rep2)
	if got := rep2.Epoch(); got != 2 {
		t.Fatalf("F2 epoch %d, want 2", got)
	}
	for _, rep := range []*Replica{rep1, rep2} {
		if got := rep.Registry().Snapshot().Counter("replica_divergence_total"); got != 0 {
			t.Fatalf("replica_divergence_total = %d, want 0", got)
		}
	}

	// No acked apply lost: every write whose ack a client saw — phase A
	// before the crash, phase B after — exists on both survivors, once.
	s1, s2 := rep1.Views().Snapshot(), rep2.Views().Snapshot()
	for key, w := range acked {
		if n := s1.Count("link", w.src, w.dst); n != 1 {
			t.Fatalf("acked apply %s: promoted leader holds link(%s,%s) %d times, want 1", key, w.src, w.dst, n)
		}
		if n := s2.Count("link", w.src, w.dst); n != 1 {
			t.Fatalf("acked apply %s: follower holds link(%s,%s) %d times, want 1", key, w.src, w.dst, n)
		}
	}
	if n := s1.Count("link", "split", "brain"); n != 0 {
		t.Fatal("the fenced split-brain write leaked into the survivors")
	}
	t.Logf("failover chaos: %d acked applies survived, epoch %d, fenced %d", len(acked), rep2.Epoch(), m["replica_fenced_total"])
}

package replica

// Follower tests: bootstrap + tail, the primary≡replica convergence
// property battery (random workloads through a fault-injecting proxy),
// the divergence guard (a gap in the version sequence is never skipped
// silently), and the kill-and-restart chaos run against a store-bound
// primary.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/faultnet"
	"ivm/internal/server"
)

// fastRetry keeps test reconnect latency in the milliseconds.
var fastRetry = client.RetryPolicy{MaxAttempts: 20, BaseDelay: 3 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

func buildPrimaryViews(t *testing.T) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func startServer(t *testing.T, v *ivm.Views, opts server.Options) *server.Server {
	t.Helper()
	srv := server.New(v, opts)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// waitApplied blocks until rep has applied at least version, failing
// the test if replication dies or the deadline lapses.
func waitApplied(t *testing.T, rep *Replica, version uint64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for rep.Applied() < version {
		select {
		case <-rep.Done():
			t.Fatalf("replication ended at version %d (want %d): %v", rep.Applied(), version, rep.Err())
		default:
		}
		if time.Now().After(end) {
			t.Fatalf("follower stuck at version %d, want %d", rep.Applied(), version)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertConverged requires the follower's state at the primary
// snapshot's version to be bit-identical: same predicates, same rows,
// same counts, and the same Explain derivations.
func assertConverged(t *testing.T, primary *ivm.Snapshot, rep *Replica) {
	t.Helper()
	got := rep.Views().Snapshot()
	if got.Version() != primary.Version() {
		t.Fatalf("versions differ: follower %d, primary %d", got.Version(), primary.Version())
	}
	wp, gp := primary.Preds(), got.Preds()
	if len(wp) != len(gp) {
		t.Fatalf("predicate sets differ: %v != %v", wp, gp)
	}
	for i, pred := range wp {
		if gp[i] != pred {
			t.Fatalf("predicate sets differ: %v != %v", wp, gp)
		}
		a, b := primary.Rows(pred), got.Rows(pred)
		if len(a) != len(b) {
			t.Fatalf("%s: primary %d rows, follower %d", pred, len(a), len(b))
		}
		for j := range a {
			if !a[j].Tuple.Equal(b[j].Tuple) || a[j].Count != b[j].Count {
				t.Fatalf("%s row %d: primary %v*%d, follower %v*%d",
					pred, j, a[j].Tuple, a[j].Count, b[j].Tuple, b[j].Count)
			}
		}
	}
	// Explain must agree too: the derivations, not just the rows.
	// Explain needs a ground goal, so explain every derived row both
	// sides hold.
	for _, row := range primary.Rows("hop") {
		goal := fmt.Sprintf("hop(%s,%s)", row.Tuple[0], row.Tuple[1])
		wantEx, err1 := primary.Explain(goal)
		gotEx, err2 := got.Explain(goal)
		if err1 != nil || err2 != nil {
			t.Fatalf("explain %s: primary err %v, follower err %v", goal, err1, err2)
		}
		if fmt.Sprint(wantEx) != fmt.Sprint(gotEx) {
			t.Fatalf("explain %s differs:\nprimary:  %v\nfollower: %v", goal, wantEx, gotEx)
		}
	}
}

// TestReplicaBootstrapAndTail is the direct-connection happy path:
// bootstrap from the state record, tail deltas (including a no-op
// commit, which must still advance the follower's version), converge
// bit-identically, and report zero lag.
func TestReplicaBootstrapAndTail(t *testing.T) {
	v := buildPrimaryViews(t)
	defer v.Shutdown()
	srv := startServer(t, v, server.Options{ReplHeartbeat: 20 * time.Millisecond})

	rep, err := Start(srv.URL(), Options{Retry: fastRetry, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	if got, want := rep.Applied(), v.Snapshot().Version(); got != want {
		t.Fatalf("bootstrapped at version %d, want %d", got, want)
	}

	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	// A no-op commit: an empty update still publishes a version; the
	// follower must track it or fall behind by one forever.
	if _, err := v.Apply(ivm.NewUpdate()); err != nil {
		t.Fatal(err)
	}
	cs, err := v.Apply(ivm.NewUpdate().Insert("link", "d", "e").Delete("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}

	waitApplied(t, rep, cs.Version(), 10*time.Second)
	assertConverged(t, v.Snapshot(), rep)

	// Lag gauges: applied == leader, zero versions behind.
	snap := rep.Registry().Snapshot()
	if got := snap.Gauge("replica_applied_version"); got != int64(cs.Version()) {
		t.Fatalf("replica_applied_version = %d, want %d", got, cs.Version())
	}
	if got := snap.Gauge("replica_lag_versions"); got != 0 {
		t.Fatalf("replica_lag_versions = %d, want 0", got)
	}
	if got := snap.Counter("replica_divergence_total"); got != 0 {
		t.Fatalf("replica_divergence_total = %d, want 0", got)
	}
}

// convergenceTrial runs one randomized workload against a primary with
// two followers behind fault-injecting proxies and requires both to
// converge bit-identically to the primary's final snapshot.
func convergenceTrial(t *testing.T, seed int64, fraction float64) {
	v := buildPrimaryViews(t)
	defer v.Shutdown()
	// A small replication window forces stragglers through the state
	// fallback (memory-only primary: no WAL to bridge from), so the
	// trials exercise resets as well as plain tailing.
	srv := startServer(t, v, server.Options{ReplWindow: 8, ReplHeartbeat: 20 * time.Millisecond})

	rng := rand.New(rand.NewSource(seed))
	var reps []*Replica
	var proxies []*faultnet.Proxy
	for i := 0; i < 2; i++ {
		proxy, err := faultnet.New(faultnet.Options{
			Target:   srv.Addr(),
			Fraction: fraction,
			Seed:     seed*100 + int64(i),
			Delay:    5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer proxy.Close()
		proxies = append(proxies, proxy)
		rep, err := Start(proxy.URL(), Options{Retry: fastRetry, StallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Stop()
		reps = append(reps, rep)
	}

	// Random workload: inserts and deletes over a small key space, with
	// deletes drawn from the live set (set semantics absorb duplicate
	// inserts, and the engine rejects deleting an absent tuple) so both
	// signs of maintenance are exercised.
	type pair struct{ src, dst string }
	live := []pair{{"a", "b"}, {"b", "c"}}
	member := map[pair]bool{{"a", "b"}: true, {"b", "c"}: true}
	applies := 10 + rng.Intn(15)
	var last uint64
	for i := 0; i < applies; i++ {
		u := ivm.NewUpdate()
		touched := false
		for j := 0; j < 1+rng.Intn(3); j++ {
			if rng.Float64() < 0.3 && len(live) > 0 {
				k := rng.Intn(len(live))
				p := live[k]
				u.Delete("link", p.src, p.dst)
				live = append(live[:k], live[k+1:]...)
				delete(member, p)
				touched = true
			} else {
				p := pair{fmt.Sprintf("n%d", rng.Intn(8)), fmt.Sprintf("n%d", rng.Intn(8))}
				if member[p] {
					continue
				}
				u.Insert("link", p.src, p.dst)
				live = append(live, p)
				member[p] = true
				touched = true
			}
		}
		_ = touched // an all-skipped round applies an empty update: also legal
		cs, err := v.Apply(u)
		if err != nil {
			t.Fatal(err)
		}
		last = cs.Version()
		if rng.Float64() < 0.2 {
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	// Drain the faults so catch-up always completes, then require
	// convergence.
	for _, proxy := range proxies {
		proxy.SetFraction(0)
	}
	final := v.Snapshot()
	for i, rep := range reps {
		waitApplied(t, rep, last, 30*time.Second)
		assertConverged(t, final, rep)
		if err := rep.Err(); err != nil {
			t.Fatalf("follower %d: terminal error %v", i, err)
		}
	}
}

// TestReplicaConvergence is the property battery: 102 randomized
// trials across fault fractions 0, 0.10, and 0.25. Every trial must
// end with both followers bit-identical to the primary.
func TestReplicaConvergence(t *testing.T) {
	trials := 102
	if testing.Short() {
		trials = 12
	}
	fractions := []float64{0, 0.10, 0.25}
	for i := 0; i < trials; i++ {
		i := i
		fraction := fractions[i%len(fractions)]
		t.Run(fmt.Sprintf("trial%03d_fault%02.0f", i, fraction*100), func(t *testing.T) {
			t.Parallel()
			convergenceTrial(t, int64(i+1), fraction)
		})
	}
}

// TestReplicaChaosKillRestart: a store-bound primary is killed
// mid-stream (graceful process death: drain, checkpoint, close) and
// restarted on a new port while two followers tail through a 25%-fault
// proxy. The followers must recover without gaps and converge on the
// restarted primary's final state.
func TestReplicaChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short")
	}
	dir := t.TempDir()
	build := func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	}
	v, _, err := ivm.OpenStore(dir, build, ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(v, server.Options{OwnViews: true, ReplWindow: 16, ReplHeartbeat: 20 * time.Millisecond})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	proxy, err := faultnet.New(faultnet.Options{
		Target:   srv.Addr(),
		Fraction: 0.25,
		Seed:     42,
		Delay:    5 * time.Millisecond,
		LogPath:  t.TempDir() + "/replica-chaos-faults.log",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	chaosRetry := client.RetryPolicy{MaxAttempts: 40, BaseDelay: 5 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	var reps []*Replica
	for i := 0; i < 2; i++ {
		rep, err := Start(proxy.URL(), Options{Retry: chaosRetry, StallTimeout: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Stop()
		reps = append(reps, rep)
	}

	apply := func(v *ivm.Views, round, i int) uint64 {
		t.Helper()
		cs, err := v.Apply(ivm.NewUpdate().
			Insert("link", fmt.Sprintf("p%d_%d", round, i), fmt.Sprintf("q%d_%d", round, i)).
			Insert("link", fmt.Sprintf("q%d_%d", round, i), fmt.Sprintf("r%d_%d", round, i)))
		if err != nil {
			t.Fatal(err)
		}
		return cs.Version()
	}

	// Phase A: load while the followers tail under faults.
	for i := 0; i < 25; i++ {
		apply(v, 0, i)
	}

	// Kill the primary: graceful shutdown checkpoints and closes the
	// store; every acked apply is durable. Followers' streams drop.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	// Restart from the checkpoint + WAL on a fresh port and repoint the
	// proxy — the followers' reconnect loops find it there.
	v2, _, err := ivm.OpenStore(dir, build, ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(v2, server.Options{OwnViews: true, ReplWindow: 16, ReplHeartbeat: 20 * time.Millisecond})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()
	proxy.SetTarget(srv2.Addr())

	// Phase B: more load on the restarted primary.
	var last uint64
	for i := 0; i < 25; i++ {
		last = apply(v2, 1, i)
	}

	proxy.SetFraction(0)
	final := v2.Snapshot()
	for i, rep := range reps {
		waitApplied(t, rep, last, 60*time.Second)
		assertConverged(t, final, rep)
		snap := rep.Registry().Snapshot()
		if got := snap.Counter("replica_divergence_total"); got != 0 {
			t.Fatalf("follower %d: replica_divergence_total = %d, want 0 — the primary restart must not open a gap", i, got)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("follower %d: terminal error %v", i, err)
		}
	}
	st := proxy.Stats()
	t.Logf("chaos: %d connections, %d faulted (%v)", st.Conns, st.Faulted, st.ByMode)
	if st.Faulted == 0 {
		t.Fatal("fault proxy never injected a fault; the chaos run proved nothing")
	}
}

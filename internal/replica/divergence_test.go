package replica

// The divergence guard: a primary that streams a version gap must
// never be silently skipped over. The follower counts the gap in
// replica_divergence_total, drops the connection, and reconnects from
// its applied version so the primary re-backfills the missing range —
// and records at or below the applied version on the re-delivered
// stream are skipped idempotently, not applied twice.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/server"
	"ivm/internal/storage"
)

// fakePrimary scripts replication connections by hand.
type fakePrimary struct {
	t     *testing.T
	state storage.ReplState
	base  uint64 // version of the state record
	conns atomic.Int64
	froms chan string // ?from= of each connection, "" when absent
}

func (f *fakePrimary) send(w http.ResponseWriter, rec storage.ReplRecord) {
	f.t.Helper()
	buf, err := storage.AppendReplRecord(nil, rec)
	if err != nil {
		f.t.Error(err)
		return
	}
	if _, err := w.Write(buf); err != nil {
		return
	}
	w.(http.Flusher).Flush()
}

func (f *fakePrimary) delta(version uint64, script string) storage.ReplRecord {
	return storage.ReplRecord{
		Kind:     storage.ReplKindDelta,
		Version:  version,
		UnixNano: time.Now().UnixNano(),
		Script:   script,
	}
}

func (f *fakePrimary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn := f.conns.Add(1)
	from := r.URL.Query().Get("from")
	f.froms <- from
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.(http.Flusher).Flush()

	switch conn {
	case 1:
		// Bootstrap: state at base, one good delta, then a gap — base+3
		// with base+2 never sent. The follower must refuse to apply it.
		payload, err := storage.EncodeReplState(f.state)
		if err != nil {
			f.t.Error(err)
			return
		}
		f.send(w, storage.ReplRecord{Kind: storage.ReplKindState, Version: f.base, UnixNano: time.Now().UnixNano(), State: payload})
		f.send(w, f.delta(f.base+1, "+link(c,d)."))
		f.send(w, f.delta(f.base+3, "+link(e,f)."))
		// Hold the connection open: the follower must cut it, not us.
		<-r.Context().Done()
	default:
		// The reconnect. Re-deliver an overlap (base+1, already applied
		// — must be skipped, not double-applied), then bridge the gap.
		f.send(w, f.delta(f.base+1, "+link(c,d)."))
		f.send(w, f.delta(f.base+2, "+link(d,e)."))
		f.send(w, f.delta(f.base+3, "+link(e,f)."))
		// Heartbeat until the test is done.
		for {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(20 * time.Millisecond):
				f.send(w, storage.ReplRecord{Kind: storage.ReplKindHeartbeat, Version: f.base + 3, UnixNano: time.Now().UnixNano()})
			}
		}
	}
}

func TestReplicaDivergenceGuard(t *testing.T) {
	// The authoritative state the fake primary claims to be at.
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	authority, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	defer authority.Shutdown()
	snap := authority.Snapshot()
	st := snap.ReplicaState()

	fake := &fakePrimary{
		t:    t,
		base: snap.Version(),
		state: storage.ReplState{
			Program:   st.Program,
			Hidden:    st.Hidden,
			Facts:     st.Facts,
			Strategy:  st.Strategy,
			Semantics: st.Semantics,
		},
		froms: make(chan string, 8),
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate", fake)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rep, err := Start(ts.URL, Options{Retry: fastRetry, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	// First connection bootstraps with no resume point.
	if got := <-fake.froms; got != "" {
		t.Fatalf("bootstrap carried from=%q, want none", got)
	}

	// The gap must force a reconnect that resumes from the applied
	// version — base+1, the last version before the gap.
	select {
	case got := <-fake.froms:
		if want := strconv.FormatUint(fake.base+1, 10); got != want {
			t.Fatalf("reconnected with from=%q, want %q (the applied version)", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never reconnected after the gap")
	}

	waitApplied(t, rep, fake.base+3, 10*time.Second)

	reg := rep.Registry().Snapshot()
	if got := reg.Counter("replica_divergence_total"); got != 1 {
		t.Fatalf("replica_divergence_total = %d, want 1 (the gap, counted once)", got)
	}
	if got := reg.Counter("replica_reconnects_total"); got < 1 {
		t.Fatalf("replica_reconnects_total = %d, want >= 1", got)
	}

	// The overlap record must have been skipped, not re-applied: apply
	// the same three deltas to the authority once each and compare.
	for _, script := range []string{"+link(c,d).", "+link(d,e).", "+link(e,f)."} {
		if _, err := authority.ApplyScript(script); err != nil {
			t.Fatal(err)
		}
	}
	assertConverged(t, authority.Snapshot(), rep)
}

// TestReadPoolReadYourWrites wires the full read-fanout path: apply to
// the leader, read through a ReadPool bounded by the ack's version, and
// the follower must serve the write (waiting for replication if need
// be) or redirect to the leader — never answer stale.
func TestReadPoolReadYourWrites(t *testing.T) {
	v := buildPrimaryViews(t)
	defer v.Shutdown()
	leader := startServer(t, v, server.Options{ReplHeartbeat: 20 * time.Millisecond})

	rep, err := Start(leader.URL(), Options{Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	follower := startServer(t, rep.Views(), server.Options{
		LeaderURL:      leader.URL(),
		MinVersionWait: 5 * time.Second,
		ExtraMetrics:   nil,
	})

	pool := client.NewReadPool(leader.URL(), []string{follower.URL()}, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		res, err := pool.Apply(ctx, "+link(c,d"+strconv.Itoa(i)+").")
		if err != nil {
			t.Fatal(err)
		}
		out, err := pool.Query(ctx, "link(X,Y)", client.ReadOptions{MinVersion: res.Version})
		if err != nil {
			t.Fatal(err)
		}
		if out.Version < res.Version {
			t.Fatalf("read-your-writes broken: read at version %d, apply acked %d", out.Version, res.Version)
		}
		found := false
		for _, r := range out.Results {
			if len(r.Tuple) == 2 && r.Tuple[0] == "c" && r.Tuple[1] == "d"+strconv.Itoa(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: written row missing from bounded-staleness read at version %d", i, out.Version)
		}
	}

	// A dead replica falls back to the leader transparently.
	deadPool := client.NewReadPool(leader.URL(), []string{"http://127.0.0.1:1"}, nil)
	if _, err := deadPool.Rows(ctx, "link", client.ReadOptions{}); err != nil {
		t.Fatalf("read with a dead replica did not fall back to the leader: %v", err)
	}
	if got := deadPool.Fallbacks(); got != 1 {
		t.Fatalf("Fallbacks() = %d, want 1", got)
	}
}

// Package value defines the scalar value model used throughout the engine:
// typed constants (int64, float64, string) with total ordering, hashing and
// arithmetic. Tuples are fixed-arity sequences of values with a canonical
// encoding suitable for use as map keys.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

const (
	// Int is a 64-bit signed integer value.
	Int Kind = iota
	// Float is a 64-bit IEEE-754 value.
	Float
	// String is an immutable UTF-8 string value.
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar database value. The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// NewInt returns an integer Value.
func NewInt(i int64) Value { return Value{kind: Int, i: i} }

// NewFloat returns a floating-point Value.
func NewFloat(f float64) Value { return Value{kind: Float, f: f} }

// NewString returns a string Value.
func NewString(s string) Value { return Value{kind: String, s: s} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It panics if v is not an Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload, converting an Int transparently.
// It panics if v is a String.
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	}
	panic("value: Float() on " + v.kind.String())
}

// Str returns the string payload. It panics if v is not a String.
func (v Value) Str() string {
	if v.kind != String {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// IsNumeric reports whether v is an Int or Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// Equal reports whether two values are identical (same kind and payload).
// Int 1 and Float 1.0 are not Equal; use Compare for numeric comparison.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case Int:
		return v.i == o.i
	case Float:
		return v.f == o.f
	default:
		return v.s == o.s
	}
}

// Compare imposes a total order over values: numerics sort before strings
// and compare numerically across Int/Float; strings compare bytewise.
// The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	vn, on := v.IsNumeric(), o.IsNumeric()
	switch {
	case vn && on:
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		// Equal as floats: break ties by kind so ordering is total and
		// consistent with Equal (Int 1 != Float 1).
		return int(v.kind) - int(o.kind)
	case vn:
		return -1
	case on:
		return 1
	default:
		return strings.Compare(v.s, o.s)
	}
}

// String renders v in the surface syntax: integers and floats as literals,
// strings bare when they look like identifiers, quoted otherwise. Float
// rendering is round-trip safe: a whole float like 5.0 prints as "5.0"
// (never "5"), so reparsing the text yields a Float again, not an Int
// with a different identity.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// NaN/±Inf have no literal syntax and render for display only;
		// store-bound Views.Apply rejects them since a logged record
		// holding one could never replay.
		if strings.IndexAny(s, ".eE") < 0 && !math.IsInf(v.f, 0) && !math.IsNaN(v.f) {
			s += ".0"
		}
		return s
	default:
		if isIdent(v.s) {
			return v.s
		}
		return strconv.Quote(v.s)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
			if i == 0 {
				return false // would parse as a variable
			}
		case r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// A leading '_' (like a leading upper-case letter) would lex as a
	// variable, so such strings must render quoted.
	c := s[0]
	return c >= 'a' && c <= 'z'
}

// appendKey appends a canonical, injective encoding of v to b.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case Int:
		b = append(b, 'i')
		b = strconv.AppendInt(b, v.i, 10)
	case Float:
		b = append(b, 'f')
		b = strconv.AppendUint(b, math.Float64bits(v.f), 16)
	default:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.s)), 10)
		b = append(b, ':')
		b = append(b, v.s...)
	}
	return b
}

// Arithmetic errors.
type ArithError struct{ Op, Detail string }

func (e *ArithError) Error() string { return "value: " + e.Op + ": " + e.Detail }

func numeric2(op string, a, b Value) (Value, Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, Value{}, &ArithError{op, fmt.Sprintf("non-numeric operand (%s, %s)", a.Kind(), b.Kind())}
	}
	return a, b, nil
}

// Add returns a+b with Int+Int staying Int and any Float promoting.
func Add(a, b Value) (Value, error) {
	if _, _, err := numeric2("add", a, b); err != nil {
		return Value{}, err
	}
	if a.kind == Int && b.kind == Int {
		return NewInt(a.i + b.i), nil
	}
	return NewFloat(a.Float() + b.Float()), nil
}

// Sub returns a-b under the same promotion rules as Add.
func Sub(a, b Value) (Value, error) {
	if _, _, err := numeric2("sub", a, b); err != nil {
		return Value{}, err
	}
	if a.kind == Int && b.kind == Int {
		return NewInt(a.i - b.i), nil
	}
	return NewFloat(a.Float() - b.Float()), nil
}

// Mul returns a*b under the same promotion rules as Add.
func Mul(a, b Value) (Value, error) {
	if _, _, err := numeric2("mul", a, b); err != nil {
		return Value{}, err
	}
	if a.kind == Int && b.kind == Int {
		return NewInt(a.i * b.i), nil
	}
	return NewFloat(a.Float() * b.Float()), nil
}

// Div returns a/b; integer division truncates, division by zero errors.
func Div(a, b Value) (Value, error) {
	if _, _, err := numeric2("div", a, b); err != nil {
		return Value{}, err
	}
	if a.kind == Int && b.kind == Int {
		if b.i == 0 {
			return Value{}, &ArithError{"div", "integer division by zero"}
		}
		return NewInt(a.i / b.i), nil
	}
	d := b.Float()
	if d == 0 {
		return Value{}, &ArithError{"div", "float division by zero"}
	}
	return NewFloat(a.Float() / d), nil
}

// Tuple is a fixed-arity sequence of values. Tuples are treated as
// immutable once constructed.
type Tuple []Value

// Key returns a canonical injective string encoding of t, usable as a map
// key. Distinct tuples always produce distinct keys.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return string(b)
}

// AppendKey appends t's canonical encoding to b and returns the extended
// slice, avoiding the string allocation of Key when a scratch buffer is
// available.
func (t Tuple) AppendKey(b []byte) []byte {
	for _, v := range t {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return b
}

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; shorter tuples sort first on ties.
func (t Tuple) Compare(o Tuple) int {
	n := min(len(t), len(o))
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(o)
}

// Clone returns an independent copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Project returns the subtuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	p := make(Tuple, len(cols))
	for i, c := range cols {
		p[i] = t[c]
	}
	return p
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// T is a convenience constructor turning Go scalars into a Tuple.
// Supported argument types: int, int64, float64, string, Value.
func T(vals ...any) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			t[i] = NewInt(int64(x))
		case int64:
			t[i] = NewInt(x)
		case float64:
			t[i] = NewFloat(x)
		case string:
			t[i] = NewString(x)
		case Value:
			t[i] = x
		default:
			panic(fmt.Sprintf("value.T: unsupported type %T", v))
		}
	}
	return t
}

package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{NewInt(7), Int},
		{NewFloat(3.5), Float},
		{NewString("x"), String},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Int promotes through Float()")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("Str accessor")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on string", func() { NewString("x").Float() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
}

func TestEqual(t *testing.T) {
	if !NewInt(1).Equal(NewInt(1)) {
		t.Error("1 == 1")
	}
	if NewInt(1).Equal(NewFloat(1)) {
		t.Error("Int 1 must not Equal Float 1.0 (Equal is identity, not numeric)")
	}
	if NewString("a").Equal(NewString("b")) {
		t.Error("a != b")
	}
	if NewInt(1).Equal(NewString("1")) {
		t.Error("cross-kind")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Value{
		NewInt(-5), NewInt(0), NewInt(3), NewFloat(-5.5), NewFloat(0),
		NewFloat(2.5), NewString(""), NewString("a"), NewString("zz"),
	}
	// Antisymmetry + transitivity via sort then pairwise check.
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			c := vals[i].Compare(vals[j])
			switch {
			case i < j && c > 0:
				t.Fatalf("order violated at %v vs %v", vals[i], vals[j])
			case i > j && c < 0:
				t.Fatalf("order violated at %v vs %v", vals[i], vals[j])
			}
			if c != -vals[j].Compare(vals[i]) {
				t.Fatalf("antisymmetry violated at %v vs %v", vals[i], vals[j])
			}
		}
	}
	// Numerics sort before strings.
	if NewInt(999).Compare(NewString("")) >= 0 {
		t.Error("numerics must sort before strings")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if NewInt(2).Compare(NewFloat(2.5)) >= 0 {
		t.Error("2 < 2.5")
	}
	if NewFloat(2.5).Compare(NewInt(3)) >= 0 {
		t.Error("2.5 < 3")
	}
	// Equal numerically: ordering falls back to kind but stays consistent.
	a, b := NewInt(2), NewFloat(2)
	if a.Compare(b) == 0 {
		t.Error("Int 2 vs Float 2.0 must not compare equal (Equal is false)")
	}
	if a.Compare(b) != -b.Compare(a) {
		t.Error("tie-break must be antisymmetric")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Add(NewInt(2), NewFloat(0.5))
	check(v, err, NewFloat(2.5))
	v, err = Sub(NewInt(2), NewInt(5))
	check(v, err, NewInt(-3))
	v, err = Mul(NewFloat(1.5), NewInt(4))
	check(v, err, NewFloat(6))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewInt(3)) // integer division truncates
	v, err = Div(NewFloat(7), NewInt(2))
	check(v, err, NewFloat(3.5))
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Add(NewString("x"), NewInt(1)); err == nil {
		t.Error("string + int must error")
	}
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"7":        NewInt(7),
		"-3":       NewInt(-3),
		"2.5":      NewFloat(2.5),
		"5.0":      NewFloat(5), // whole floats keep a ".0" so they reparse as floats
		"-2.0":     NewFloat(-2),
		"1e+21":    NewFloat(1e21),
		"1e-07":    NewFloat(1e-7),
		"abc":      NewString("abc"),
		`"Abc"`:    NewString("Abc"), // would parse as a variable → quoted
		`"a b"`:    NewString("a b"),
		`"9lives"`: NewString("9lives"),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%#v.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Tricky near-collisions.
	pairs := [][2]Tuple{
		{T("ab", "c"), T("a", "bc")},
		{T("a|b"), T("a", "b")},
		{T(1, 2), T(12)},
		{T(1), T(1.0)},
		{T("1"), T(1)},
		{T(), T("")},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision: %v vs %v", p[0], p[1])
		}
	}
	if !T(1, "a").Equal(T(1, "a")) || T(1, "a").Key() != T(1, "a").Key() {
		t.Error("identical tuples must share keys")
	}
}

func TestTupleKeyQuick(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		t1 := T(a1, a2)
		t2 := T(b1, b2)
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCompare(t *testing.T) {
	if T(1, 2).Compare(T(1, 3)) >= 0 {
		t.Error("(1,2) < (1,3)")
	}
	if T(1).Compare(T(1, 0)) >= 0 {
		t.Error("shorter sorts first on ties")
	}
	if T(2).Compare(T(1, 9)) <= 0 {
		t.Error("(2) > (1,9)")
	}
	if T("a", 1).Compare(T("a", 1)) != 0 {
		t.Error("equal tuples compare 0")
	}
}

func TestTupleProjectCloneString(t *testing.T) {
	tu := T("a", 1, 2.5)
	p := tu.Project([]int{2, 0})
	if !p.Equal(T(2.5, "a")) {
		t.Errorf("project: %v", p)
	}
	c := tu.Clone()
	c[0] = NewString("z")
	if !tu[0].Equal(NewString("a")) {
		t.Error("clone must be independent")
	}
	if tu.String() != "(a, 1, 2.5)" {
		t.Errorf("String: %q", tu.String())
	}
}

func TestFloatKeyHandlesSpecials(t *testing.T) {
	a := T(math.Inf(1))
	b := T(math.Inf(-1))
	if a.Key() == b.Key() {
		t.Error("±Inf must not collide")
	}
}

func TestTConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("T with unsupported type must panic")
		}
	}()
	T([]int{1})
}

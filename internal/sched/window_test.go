package sched

import (
	"sync"
	"testing"
)

func TestWindowAppendNextBounds(t *testing.T) {
	w := NewWindow[string](4)
	if _, _, ok := w.Bounds(); ok {
		t.Fatal("fresh window claims bounds")
	}
	if _, ok := w.Next(0); ok {
		t.Fatal("fresh window returned an entry")
	}

	w.Append(1, "a")
	w.Append(2, "b")
	w.Append(3, "c")
	ca, hi, ok := w.Bounds()
	if !ok || ca != 0 || hi != 3 {
		t.Fatalf("bounds: (%d, %d, %v)", ca, hi, ok)
	}
	for after, want := range map[uint64]string{0: "a", 1: "b", 2: "c"} {
		e, ok := w.Next(after)
		if !ok || e.Item != want || e.Version != after+1 {
			t.Fatalf("Next(%d) = %+v, %v", after, e, ok)
		}
	}
	if _, ok := w.Next(3); ok {
		t.Fatal("caught-up reader got an entry")
	}

	// Overflow evicts the oldest and raises the low-water mark.
	w.Append(4, "d")
	w.Append(5, "e")
	ca, hi, _ = w.Bounds()
	if ca != 1 || hi != 5 {
		t.Fatalf("bounds after eviction: (%d, %d)", ca, hi)
	}
	if _, ok := w.Next(0); ok {
		t.Fatal("reader below the window got an entry instead of a backfill signal")
	}
	if e, ok := w.Next(1); !ok || e.Item != "b" {
		t.Fatalf("Next(1) = %+v, %v", e, ok)
	}
}

func TestWindowSeed(t *testing.T) {
	w := NewWindow[int](2)
	w.Seed(10)
	ca, hi, ok := w.Bounds()
	if !ok || ca != 10 || hi != 10 {
		t.Fatalf("bounds after seed: (%d, %d, %v)", ca, hi, ok)
	}
	// Seeding again is a no-op; appending continues from the seed.
	w.Seed(99)
	w.Append(11, 1)
	if e, ok := w.Next(10); !ok || e.Item != 1 {
		t.Fatalf("Next(10) = %+v, %v", e, ok)
	}
	if ca, hi, _ := w.Bounds(); ca != 10 || hi != 11 {
		t.Fatalf("bounds: (%d, %d)", ca, hi)
	}
}

func TestWindowRestartClears(t *testing.T) {
	w := NewWindow[int](8)
	w.Append(5, 5)
	w.Append(6, 6)
	// A version at or below hi means the counter restarted: the window
	// must not splice histories.
	w.Append(3, 33)
	ca, hi, _ := w.Bounds()
	if ca != 2 || hi != 3 {
		t.Fatalf("bounds after restart: (%d, %d)", ca, hi)
	}
	if e, ok := w.Next(2); !ok || e.Item != 33 {
		t.Fatalf("Next(2) = %+v, %v", e, ok)
	}
	if _, ok := w.Next(1); ok {
		t.Fatal("pre-restart reader should be told to backfill")
	}
}

func TestWindowWaitCh(t *testing.T) {
	w := NewWindow[int](2)
	ch := w.WaitCh()
	select {
	case <-ch:
		t.Fatal("wait channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	w.Append(1, 1)
	<-done

	// Close wakes waiters too.
	ch = w.WaitCh()
	w.Close()
	<-ch
	// Appends after Close are dropped.
	w.Append(2, 2)
	if _, _, ok := w.Bounds(); !ok {
		t.Fatal("bounds lost")
	}
	if _, ok := w.Next(1); ok {
		t.Fatal("append after Close landed")
	}
}

func TestWindowConcurrentReaders(t *testing.T) {
	w := NewWindow[uint64](64)
	const last = 2000
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var after uint64
			for after < last {
				// Take the wait channel before probing: an append landing
				// between the probe and the wait then wakes us instead of
				// being lost.
				ch := w.WaitCh()
				e, ok := w.Next(after)
				if !ok {
					ca, _, bok := w.Bounds()
					if bok && after < ca {
						// Fell below the window: jump to the low-water mark,
						// as a real reader would after backfilling.
						after = ca
						continue
					}
					<-ch
					continue
				}
				if e.Item != e.Version {
					t.Errorf("entry %d carries item %d", e.Version, e.Item)
					return
				}
				after = e.Version
			}
		}()
	}
	for v := uint64(1); v <= last; v++ {
		w.Append(v, v)
	}
	wg.Wait()
}

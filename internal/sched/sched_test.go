package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type req struct {
	id   int
	done chan struct{}
}

// TestSingleCallerBatchesOfOne: with no contention every batch has
// exactly one request, processed by the caller itself.
func TestSingleCallerBatchesOfOne(t *testing.T) {
	var batches [][]int
	c := New(func(batch []*req) {
		ids := make([]int, len(batch))
		for i, r := range batch {
			ids[i] = r.id
			close(r.done)
		}
		batches = append(batches, ids)
	})
	for i := 0; i < 5; i++ {
		r := &req{id: i, done: make(chan struct{})}
		if led := c.Submit(r); !led {
			t.Fatalf("uncontended Submit %d did not lead", i)
		}
		<-r.done
	}
	if len(batches) != 5 {
		t.Fatalf("got %d batches, want 5: %v", len(batches), batches)
	}
	for i, b := range batches {
		if len(b) != 1 || b[0] != i {
			t.Fatalf("batch %d = %v, want [%d]", i, b, i)
		}
	}
}

// TestConcurrentSubmitsCoalesce: requests arriving while a batch is in
// flight land in a later batch together; every request is completed
// exactly once and batches never overlap.
func TestConcurrentSubmitsCoalesce(t *testing.T) {
	const n = 200
	var mu sync.Mutex
	var active, maxBatch, batches int
	var processed int64
	var c *Combiner[*req]
	c = New(func(batch []*req) {
		mu.Lock()
		active++
		if active != 1 {
			mu.Unlock()
			t.Error("two batches processed concurrently")
			return
		}
		batches++
		if len(batch) > maxBatch {
			maxBatch = len(batch)
		}
		mu.Unlock()
		for _, r := range batch {
			atomic.AddInt64(&processed, 1)
			close(r.done)
		}
		mu.Lock()
		active--
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &req{id: i, done: make(chan struct{})}
			c.Submit(r)
			<-r.done
		}(i)
	}
	wg.Wait()
	if processed != n {
		t.Fatalf("processed %d requests, want %d", processed, n)
	}
	if batches > n {
		t.Fatalf("batches %d exceeds requests %d", batches, n)
	}
	t.Logf("n=%d batches=%d maxBatch=%d (coalesce ratio %.2f)",
		n, batches, maxBatch, float64(n)/float64(batches))
}

// TestLeaderDrainsFollowers: a slow first batch accumulates followers
// that the same leader then drains before returning.
func TestLeaderDrainsFollowers(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	first := true
	var got []int
	var c *Combiner[*req]
	c = New(func(batch []*req) {
		if first {
			first = false
			close(started)
			<-release
		}
		for _, r := range batch {
			got = append(got, r.id)
			close(r.done)
		}
	})

	lead := &req{id: 0, done: make(chan struct{})}
	leadDone := make(chan struct{})
	go func() {
		if !c.Submit(lead) {
			t.Error("first submitter should lead")
		}
		close(leadDone)
	}()
	<-started

	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &req{id: i, done: make(chan struct{})}
			if c.Submit(r) {
				t.Errorf("follower %d became leader while batch in flight", i)
			}
			<-r.done
		}(i)
	}
	// Wait until all three followers are queued, then release the leader.
	for {
		c.mu.Lock()
		queued := len(c.queue)
		c.mu.Unlock()
		if queued == 3 {
			break
		}
	}
	close(release)
	wg.Wait()
	<-leadDone
	if len(got) != 4 || got[0] != 0 {
		t.Fatalf("processed order %v, want leader first then 3 followers", got)
	}
}

// TestQuiesce: Quiesce must block until every submitted request has
// been processed, and return immediately on an idle combiner.
func TestQuiesce(t *testing.T) {
	var mu sync.Mutex
	processed := 0
	release := make(chan struct{})
	c := New(func(batch []int) {
		<-release
		mu.Lock()
		processed += len(batch)
		mu.Unlock()
	})

	c.Quiesce() // idle: returns immediately

	go c.Submit(1) // becomes leader, blocks in process
	for {
		c.mu.Lock()
		leading := c.leading
		c.mu.Unlock()
		if leading {
			break
		}
	}
	go c.Submit(2) // queued follower

	done := make(chan struct{})
	go func() {
		c.Quiesce()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Quiesce returned while a batch was still processing")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce did not return after the queue drained")
	}
	mu.Lock()
	defer mu.Unlock()
	if processed != 2 {
		t.Fatalf("processed %d requests, want 2", processed)
	}
}

package sched

import "sync"

// WindowEntry is one version-stamped item held by a Window.
type WindowEntry[T any] struct {
	Version uint64
	Item    T
}

// Window is a bounded, version-ordered ring of committed items — the
// in-memory tail the replication endpoint streams from. Appends carry
// strictly increasing versions; once the ring is full the oldest entry
// is evicted, and Bounds reports the exclusive low-water mark below
// which readers must backfill from durable storage instead.
//
// A Window is safe for one appender and many concurrent readers.
type Window[T any] struct {
	mu sync.Mutex
	// entries[(start+i)%len] for i in [0,count) are the live entries in
	// version order.
	entries []WindowEntry[T]
	start   int
	count   int
	// coversAfter is the exclusive lower bound of the window: every
	// committed version > coversAfter and <= hi is present. Initially
	// unset (haveBounds false) until Seed or the first Append.
	coversAfter uint64
	hi          uint64
	haveBounds  bool
	closed      bool
	// waitCh is closed and replaced on every Append (and on Close), so
	// readers can block on "anything new" without polling.
	waitCh chan struct{}
}

// NewWindow returns a Window retaining at most capacity entries
// (minimum 1).
func NewWindow[T any](capacity int) *Window[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Window[T]{
		entries: make([]WindowEntry[T], capacity),
		waitCh:  make(chan struct{}),
	}
}

// Seed establishes the window's lower bound at version v without adding
// an entry: "everything up to and including v is already durable
// elsewhere". A no-op once the window has bounds (an Append or an
// earlier Seed), so registering the appender before seeding is safe.
func (w *Window[T]) Seed(v uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.haveBounds {
		return
	}
	w.coversAfter, w.hi, w.haveBounds = v, v, true
}

// Append adds an item committed at version. Versions must advance; an
// append at or below the current high-water mark means the version
// counter restarted (a state reset), so the window clears and restarts
// from the new version rather than serve a spliced history.
func (w *Window[T]) Append(version uint64, item T) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	if w.haveBounds && version <= w.hi {
		w.start, w.count = 0, 0
		w.coversAfter = version - 1
	} else if !w.haveBounds {
		w.coversAfter = version - 1
	}
	w.haveBounds = true
	if w.count == len(w.entries) {
		// Evict the oldest entry; readers below it must backfill.
		w.coversAfter = w.entries[w.start].Version
		w.start = (w.start + 1) % len(w.entries)
		w.count--
	}
	w.entries[(w.start+w.count)%len(w.entries)] = WindowEntry[T]{Version: version, Item: item}
	w.count++
	w.hi = version
	ch := w.waitCh
	w.waitCh = make(chan struct{})
	w.mu.Unlock()
	close(ch)
}

// Bounds returns the window's coverage: every committed version in
// (coversAfter, hi] is retrievable via Next. ok is false until the
// window has been seeded or appended to.
func (w *Window[T]) Bounds() (coversAfter, hi uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coversAfter, w.hi, w.haveBounds
}

// Next returns the oldest entry with Version > after. ok is false when
// no such entry is in the window — either the reader is caught up
// (after >= hi) or it fell below the window (after < coversAfter, in
// which case the caller must backfill; distinguish via Bounds).
func (w *Window[T]) Next(after uint64) (WindowEntry[T], bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.haveBounds || after < w.coversAfter {
		return WindowEntry[T]{}, false
	}
	// Binary search the ring for the first version > after.
	lo, hi := 0, w.count
	for lo < hi {
		mid := (lo + hi) / 2
		if w.entries[(w.start+mid)%len(w.entries)].Version > after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == w.count {
		return WindowEntry[T]{}, false
	}
	return w.entries[(w.start+lo)%len(w.entries)], true
}

// WaitCh returns a channel closed at the next Append (or Close).
// Readers that found nothing via Next select on it to sleep until new
// commits arrive.
func (w *Window[T]) WaitCh() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.waitCh
}

// Close wakes all waiters and makes further Appends no-ops.
func (w *Window[T]) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	ch := w.waitCh
	w.mu.Unlock()
	close(ch)
}

// Package sched implements the coalescing update scheduler behind
// ivm.Views.Apply: a leader-based combiner in the style of flat
// combining / group commit.
//
// Concurrent callers enqueue requests; the first caller to find no
// leader active becomes the maintainer and drains the queue in batches,
// so every batch the processor sees is exactly the set of requests that
// arrived while the previous batch was being maintained. Under a bursty
// write load this coalesces many logical updates into one maintenance
// pass (one delta propagation, one WAL group commit, one snapshot
// publication); with a single caller every batch has size one and the
// behavior is indistinguishable from direct application.
//
// Using the caller's goroutine as the maintainer (instead of a
// dedicated background goroutine) means an idle Views costs nothing and
// needs no lifecycle management: there is no goroutine to leak, stop,
// or flush on Close.
package sched

import "sync"

// Combiner hands batches of queued requests to a single processor at a
// time. The zero value is not usable; call New.
type Combiner[R any] struct {
	process func(batch []R)

	mu      sync.Mutex
	idle    sync.Cond // signaled when queue empties and no leader runs
	queue   []R
	leading bool
}

// New returns a combiner that calls process for every drained batch.
// process runs on one goroutine at a time (never concurrently with
// itself) and must complete every request in the batch — typically by
// fulfilling a promise carried inside R — because followers block until
// their request is completed, not until process returns.
func New[R any](process func(batch []R)) *Combiner[R] {
	c := &Combiner[R]{process: process}
	c.idle.L = &c.mu
	return c
}

// Quiesce blocks until the combiner is idle: the queue is empty and no
// leader is processing a batch. Every request submitted before Quiesce
// was called has been completed when it returns. Requests submitted
// concurrently with or after Quiesce may or may not be covered — the
// caller is responsible for stopping producers first (the graceful-
// shutdown discipline: stop accepting work, then Quiesce, then sync).
func (c *Combiner[R]) Quiesce() {
	c.mu.Lock()
	for c.leading || len(c.queue) > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
}

// Submit enqueues r. If a leader is already draining the queue, Submit
// returns immediately (the request will be picked up in a later batch
// and completed by the leader); otherwise the calling goroutine becomes
// the leader and processes batches until the queue is empty — its own
// request is part of the first batch. Returns true if the caller led.
func (c *Combiner[R]) Submit(r R) bool {
	c.mu.Lock()
	c.queue = append(c.queue, r)
	if c.leading {
		c.mu.Unlock()
		return false
	}
	c.leading = true
	for len(c.queue) > 0 {
		batch := c.queue
		c.queue = nil
		c.mu.Unlock()
		c.process(batch)
		c.mu.Lock()
	}
	c.leading = false
	c.idle.Broadcast()
	c.mu.Unlock()
	return true
}

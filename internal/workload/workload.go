// Package workload generates the synthetic relations and change batches
// the experiments run on: random/chain/grid/scale-free link graphs
// (matching the paper's running hop/tri_hop/transitive-closure examples)
// and controllable insert/delete/update mixes.
package workload

import (
	"fmt"
	"math/rand"

	"ivm/internal/relation"
	"ivm/internal/value"
)

// node renders node i as a compact symbolic constant ("n17").
func node(i int) value.Value { return value.NewString(fmt.Sprintf("n%d", i)) }

// RandomGraph returns a binary link relation with m distinct random edges
// over n nodes (no self-loops).
func RandomGraph(rng *rand.Rand, n, m int) *relation.Relation {
	rel := relation.New(2)
	if n < 2 {
		return rel
	}
	if max := n * (n - 1); m > max {
		m = max
	}
	for rel.Len() < m {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		t := value.Tuple{node(a), node(b)}
		if !rel.Has(t) {
			rel.Add(t, 1)
		}
	}
	return rel
}

// RandomWeightedGraph returns a ternary link(S, D, Cost) relation with m
// distinct random edges over n nodes and integer costs in [1, maxCost].
func RandomWeightedGraph(rng *rand.Rand, n, m, maxCost int) *relation.Relation {
	rel := relation.New(3)
	if n < 2 {
		return rel
	}
	if max := n * (n - 1); m > max {
		m = max
	}
	seen := make(map[string]bool)
	for len(seen) < m {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		pair := value.Tuple{node(a), node(b)}
		k := pair.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		rel.Add(value.Tuple{node(a), node(b), value.NewInt(int64(1 + rng.Intn(maxCost)))}, 1)
	}
	return rel
}

// ChainGraph returns the path 0→1→…→n-1.
func ChainGraph(n int) *relation.Relation {
	rel := relation.New(2)
	for i := 0; i+1 < n; i++ {
		rel.Add(value.Tuple{node(i), node(i + 1)}, 1)
	}
	return rel
}

// CycleGraph returns the directed cycle over n nodes.
func CycleGraph(n int) *relation.Relation {
	rel := ChainGraph(n)
	if n > 1 {
		rel.Add(value.Tuple{node(n - 1), node(0)}, 1)
	}
	return rel
}

// GridGraph returns a w×h grid with right and down edges — many
// alternative derivations per reachable pair, the regime where DRed's
// rederivation step pays off.
func GridGraph(w, h int) *relation.Relation {
	rel := relation.New(2)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				rel.Add(value.Tuple{node(id(x, y)), node(id(x+1, y))}, 1)
			}
			if y+1 < h {
				rel.Add(value.Tuple{node(id(x, y)), node(id(x, y+1))}, 1)
			}
		}
	}
	return rel
}

// LayeredDAG returns a layered random DAG: layers × width nodes, each
// node linking to fanout random nodes of the next layer. High fanout
// gives many alternative paths, so deletions have small, localized
// effects — the regime where incremental maintenance of recursive views
// pays off.
func LayeredDAG(rng *rand.Rand, layers, width, fanout int) *relation.Relation {
	rel := relation.New(2)
	id := func(layer, i int) int { return layer*width + i }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			seen := make(map[int]bool)
			for len(seen) < fanout && len(seen) < width {
				j := rng.Intn(width)
				if seen[j] {
					continue
				}
				seen[j] = true
				rel.Add(value.Tuple{node(id(l, i)), node(id(l+1, j))}, 1)
			}
		}
	}
	return rel
}

// SkewedJoin builds the adversarial cardinality shape for the join
// planner benchmark, for the program
//
//	out(Y,Z) :- req(X), hot(X,Y), wide(X,Z).
//
// hot is small but fans out hugely: hotKeys distinct X values with
// fanout Y rows each. wide is large but selective: wideRows rows whose X
// values are unique, with only the first overlap rows reusing hot's
// keys. A syntactic order (smaller relation first on a bound-count tie)
// joins hot before wide and enumerates fanout rows per Δreq key; a
// cardinality-aware order probes wide first and exits after ≤ overlap
// matches.
func SkewedJoin(hotKeys, fanout, wideRows, overlap int) (hot, wide *relation.Relation) {
	hot = relation.New(2)
	for k := 0; k < hotKeys; k++ {
		for f := 0; f < fanout; f++ {
			hot.Add(value.Tuple{hotKey(k), value.NewString(fmt.Sprintf("y%d_%d", k, f))}, 1)
		}
	}
	wide = relation.New(2)
	for i := 0; i < wideRows; i++ {
		x := value.NewString(fmt.Sprintf("w%d", i))
		if i < overlap {
			x = hotKey(i % hotKeys)
		}
		wide.Add(value.Tuple{x, value.NewString(fmt.Sprintf("z%d", i))}, 1)
	}
	return hot, wide
}

func hotKey(k int) value.Value { return value.NewString(fmt.Sprintf("h%d", k)) }

// SkewedReqKey returns the i-th Δreq key for SkewedJoin data: a hot key,
// so every delta drives the full hot fan-out under a syntactic order.
func SkewedReqKey(hotKeys, i int) value.Value { return hotKey(i % hotKeys) }

// ClusteredDeletes deletes k consecutive tuples (in sorted order) from
// the middle of rel: overlapping effect regions, the worst case for
// per-change fragmented propagation (the PF baseline).
func ClusteredDeletes(rel *relation.Relation, k int) *relation.Relation {
	rows := rel.SortedRows()
	if k > len(rows) {
		k = len(rows)
	}
	start := (len(rows) - k) / 2
	out := relation.New(rel.Arity())
	for _, row := range rows[start : start+k] {
		out.Add(row.Tuple, -1)
	}
	return out
}

// ScaleFree returns a preferential-attachment graph: each new node links
// to k existing nodes chosen proportionally to their degree.
func ScaleFree(rng *rand.Rand, n, k int) *relation.Relation {
	rel := relation.New(2)
	if n < 2 {
		return rel
	}
	targets := []int{0}
	for v := 1; v < n; v++ {
		links := make(map[int]bool)
		for len(links) < k && len(links) < v {
			links[targets[rng.Intn(len(targets))]] = true
		}
		for u := range links {
			rel.Add(value.Tuple{node(v), node(u)}, 1)
			targets = append(targets, u, v)
		}
	}
	return rel
}

// SampleDeletes picks k distinct stored tuples of rel uniformly and
// returns them as a deletion delta (count −1 each).
func SampleDeletes(rng *rand.Rand, rel *relation.Relation, k int) *relation.Relation {
	rows := rel.SortedRows() // deterministic base order for reproducibility
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	if k > len(rows) {
		k = len(rows)
	}
	out := relation.New(rel.Arity())
	for _, row := range rows[:k] {
		out.Add(row.Tuple, -1)
	}
	return out
}

// SampleInserts returns k distinct random new edges over n nodes that are
// not already in rel, as an insertion delta (count +1 each).
func SampleInserts(rng *rand.Rand, rel *relation.Relation, n, k int) *relation.Relation {
	out := relation.New(2)
	guard := 0
	for out.Len() < k && guard < 100*k+1000 {
		guard++
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		t := value.Tuple{node(a), node(b)}
		if rel.Has(t) || out.Has(t) {
			continue
		}
		out.Add(t, 1)
	}
	return out
}

// Mixed combines deletions and insertions into one batch: delK deletions
// of existing tuples and insK fresh insertions over n nodes.
func Mixed(rng *rand.Rand, rel *relation.Relation, n, delK, insK int) *relation.Relation {
	out := SampleDeletes(rng, rel, delK)
	ins := SampleInserts(rng, rel, n, insK)
	ins.Each(func(row relation.Row) {
		if !out.Has(row.Tuple) && out.Count(row.Tuple) == 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

package workload

import (
	"math/rand"
	"testing"

	"ivm/internal/relation"
	"ivm/internal/value"
)

func TestRandomGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGraph(rng, 20, 50)
	if g.Len() != 50 || g.Arity() != 2 {
		t.Fatalf("len=%d arity=%d", g.Len(), g.Arity())
	}
	g.Each(func(r relation.Row) {
		if r.Count != 1 {
			t.Fatal("edges have count 1")
		}
		if r.Tuple[0].Equal(r.Tuple[1]) {
			t.Fatal("no self loops")
		}
	})
	if RandomGraph(rng, 1, 10).Len() != 0 {
		t.Fatal("degenerate n")
	}
}

func TestRandomWeightedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomWeightedGraph(rng, 10, 30, 5)
	if g.Len() != 30 || g.Arity() != 3 {
		t.Fatalf("len=%d", g.Len())
	}
	pairs := make(map[string]bool)
	g.Each(func(r relation.Row) {
		c := r.Tuple[2].Int()
		if c < 1 || c > 5 {
			t.Fatalf("cost out of range: %d", c)
		}
		k := value.Tuple{r.Tuple[0], r.Tuple[1]}.Key()
		if pairs[k] {
			t.Fatal("duplicate endpoint pair")
		}
		pairs[k] = true
	})
}

func TestChainCycleGrid(t *testing.T) {
	if ChainGraph(5).Len() != 4 {
		t.Fatal("chain edges")
	}
	if CycleGraph(5).Len() != 5 {
		t.Fatal("cycle edges")
	}
	g := GridGraph(3, 4)
	// right edges: 2*4, down edges: 3*3
	if g.Len() != 2*4+3*3 {
		t.Fatalf("grid edges: %d", g.Len())
	}
}

func TestScaleFreeConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ScaleFree(rng, 50, 2)
	if g.Len() < 50 {
		t.Fatalf("edges: %d", g.Len())
	}
	g.Each(func(r relation.Row) {
		if r.Tuple[0].Equal(r.Tuple[1]) {
			t.Fatal("no self loops")
		}
	})
}

func TestSampleDeletes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ChainGraph(20)
	d := SampleDeletes(rng, g, 5)
	if d.Len() != 5 {
		t.Fatalf("deletes: %d", d.Len())
	}
	d.Each(func(r relation.Row) {
		if r.Count != -1 || !g.Has(r.Tuple) {
			t.Fatalf("bad delete row: %v", r)
		}
	})
	// Requesting more than available clamps.
	if SampleDeletes(rng, ChainGraph(3), 10).Len() != 2 {
		t.Fatal("clamp")
	}
}

func TestSampleInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := ChainGraph(10)
	ins := SampleInserts(rng, g, 10, 8)
	if ins.Len() != 8 {
		t.Fatalf("inserts: %d", ins.Len())
	}
	ins.Each(func(r relation.Row) {
		if r.Count != 1 || g.Has(r.Tuple) {
			t.Fatalf("bad insert row: %v", r)
		}
	})
}

func TestMixedDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := GridGraph(4, 4)
	d := Mixed(rng, g, 16, 3, 3)
	pos, neg := 0, 0
	d.Each(func(r relation.Row) {
		switch {
		case r.Count == 1:
			pos++
			if g.Has(r.Tuple) {
				t.Fatal("insert of existing tuple")
			}
		case r.Count == -1:
			neg++
			if !g.Has(r.Tuple) {
				t.Fatal("delete of absent tuple")
			}
		default:
			t.Fatalf("bad count %d", r.Count)
		}
	})
	if pos != 3 || neg != 3 {
		t.Fatalf("pos=%d neg=%d", pos, neg)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := RandomGraph(rand.New(rand.NewSource(7)), 15, 40)
	b := RandomGraph(rand.New(rand.NewSource(7)), 15, 40)
	if !relation.Equal(a, b) {
		t.Fatal("same seed must give the same graph")
	}
}

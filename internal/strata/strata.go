// Package strata computes the stratification of a Datalog program per
// Definition 3.1 of the paper: build the predicate dependency graph
// ([ABW88]), collapse strongly connected components into a reduced
// dependency graph (RDG), and assign stratum numbers by topological order.
// Base predicates get stratum 0; the rule stratum number RSN(r) is the
// stratum of r's head predicate.
//
// The package also verifies stratified negation and aggregation: whenever
// q depends on p through a negated or aggregate subgoal, SN(p) < SN(q)
// must hold — equivalently, no negative/aggregate edge may stay inside a
// strongly connected component.
package strata

import (
	"fmt"
	"sort"

	"ivm/internal/datalog"
)

// EdgeKind distinguishes positive dependencies from non-monotonic ones.
type EdgeKind uint8

const (
	// EdgePositive is a dependency through a positive subgoal.
	EdgePositive EdgeKind = iota
	// EdgeNegative is a dependency through a negated or aggregate subgoal,
	// both of which are non-monotonic (paper Section 6.2: "Like negation,
	// aggregation subgoals are non-monotonic").
	EdgeNegative
)

// Stratification is the full analysis result for a program.
type Stratification struct {
	// SN maps every predicate (base and derived) to its stratum number.
	// Base predicates have SN 0.
	SN map[string]int
	// RSN[i] is the rule stratum number of program rule i.
	RSN []int
	// MaxStratum is the largest stratum number assigned.
	MaxStratum int
	// Recursive[pred] reports whether pred is in a non-trivial SCC or
	// depends directly on itself.
	Recursive map[string]bool
	// SCC maps each predicate to its component id; predicates share an id
	// iff they are mutually recursive.
	SCC map[string]int
	// Base is the set of base (edb) predicates.
	Base map[string]bool
}

// NotStratifiedError reports a negation/aggregation cycle.
type NotStratifiedError struct {
	From, To string
}

func (e *NotStratifiedError) Error() string {
	return fmt.Sprintf("strata: program is not stratified: %s depends non-monotonically on %s inside a recursive component", e.From, e.To)
}

type edge struct {
	to   string
	kind EdgeKind
}

// Compute analyzes p. It returns an error if p uses negation or
// aggregation through a cycle (not stratified).
func Compute(p *datalog.Program) (*Stratification, error) {
	derived := p.DerivedPreds()
	base := p.BasePreds()

	// Dependency graph: head -> body predicate.
	adj := make(map[string][]edge)
	nodes := make(map[string]bool)
	for pred := range derived {
		nodes[pred] = true
	}
	for pred := range base {
		nodes[pred] = true
	}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			pred := l.Pred()
			if pred == "" {
				continue
			}
			kind := EdgePositive
			if l.Kind == datalog.LitNegated || l.Kind == datalog.LitAggregate {
				kind = EdgeNegative
			}
			adj[r.Head.Pred] = append(adj[r.Head.Pred], edge{to: pred, kind: kind})
		}
	}

	scc := tarjan(nodes, adj)

	// Stratified-negation check: no negative edge inside an SCC.
	for from, edges := range adj {
		for _, e := range edges {
			if e.kind == EdgeNegative && scc[from] == scc[e.to] {
				return nil, &NotStratifiedError{From: from, To: e.to}
			}
		}
	}

	// Recursive predicates: component of size > 1, or a self-loop.
	compSize := make(map[int]int)
	for _, c := range scc {
		compSize[c]++
	}
	recursive := make(map[string]bool)
	for from, edges := range adj {
		for _, e := range edges {
			if e.to == from {
				recursive[from] = true
			}
		}
	}
	for pred, c := range scc {
		if compSize[c] > 1 {
			recursive[pred] = true
		}
	}

	// Stratum numbers: longest-path layering over the reduced dependency
	// graph (Definition 3.1's topological sort), so SN strictly increases
	// along every cross-component edge — e.g. Example 4.2 assigns hop SN 1
	// and tri_hop SN 2 even though the dependency is positive. Base
	// predicates sit at stratum 0.
	sn := computeSN(nodes, adj, scc, derived)

	st := &Stratification{
		SN:        sn,
		RSN:       make([]int, len(p.Rules)),
		Recursive: recursive,
		SCC:       scc,
		Base:      base,
	}
	for i, r := range p.Rules {
		st.RSN[i] = sn[r.Head.Pred]
		if st.RSN[i] > st.MaxStratum {
			st.MaxStratum = st.RSN[i]
		}
	}
	for _, s := range sn {
		if s > st.MaxStratum {
			st.MaxStratum = s
		}
	}
	return st, nil
}

// computeSN assigns stratum numbers via a fixpoint over component longest
// paths. Components are processed in reverse topological order (Tarjan
// emits components in reverse topological order of the condensation, i.e.
// callees before callers when we iterate assignment below).
func computeSN(nodes map[string]bool, adj map[string][]edge, scc map[string]int, derived map[string]bool) map[string]int {
	// Component-level constraint graph. Every cross-component edge forces
	// a strictly higher stratum for the dependent component.
	compEdges := make(map[int][]int)
	comps := make(map[int][]string)
	for n := range nodes {
		comps[scc[n]] = append(comps[scc[n]], n)
	}
	for from, edges := range adj {
		for _, e := range edges {
			cf, ct := scc[from], scc[e.to]
			if cf == ct {
				continue
			}
			compEdges[cf] = append(compEdges[cf], ct)
		}
	}

	// A component containing any derived predicate sits at stratum >= 1.
	memo := make(map[int]int)
	var snOf func(c int) int
	snOf = func(c int) int {
		if s, ok := memo[c]; ok {
			return s
		}
		memo[c] = 0 // cycle guard; condensation is acyclic so unused
		s := 0
		for _, pred := range comps[c] {
			if derived[pred] {
				s = 1
				break
			}
		}
		for _, to := range compEdges[c] {
			if dep := snOf(to) + 1; dep > s {
				s = dep
			}
		}
		memo[c] = s
		return s
	}

	sn := make(map[string]int, len(nodes))
	for n := range nodes {
		sn[n] = snOf(scc[n])
	}
	return sn
}

// tarjan computes strongly connected components over the given nodes and
// adjacency, returning a component id per node. Iterative to be safe on
// deep graphs.
func tarjan(nodes map[string]bool, adj map[string][]edge) map[string]int {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic component numbering

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	counter := 0
	compID := 0

	type frame struct {
		node string
		ei   int
	}

	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{node: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := adj[f.node]
			advanced := false
			for f.ei < len(edges) {
				w := edges[f.ei].to
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && low[f.node] > index[w] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Done with f.node.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compID
					if w == v {
						break
					}
				}
				compID++
			}
		}
	}
	return comp
}

// RulesByStratum groups rule indexes by RSN, lowest stratum first.
func (s *Stratification) RulesByStratum(p *datalog.Program) [][]int {
	out := make([][]int, s.MaxStratum+1)
	for i := range p.Rules {
		rsn := s.RSN[i]
		out[rsn] = append(out[rsn], i)
	}
	return out
}

// PredsInStratum returns the derived predicates at stratum n, sorted.
func (s *Stratification) PredsInStratum(n int) []string {
	var out []string
	for pred, sn := range s.SN {
		if sn == n && !s.Base[pred] {
			out = append(out, pred)
		}
	}
	sort.Strings(out)
	return out
}

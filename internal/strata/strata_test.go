package strata

import (
	"testing"

	"ivm/internal/parser"
)

func compute(t *testing.T, src string) *Stratification {
	t.Helper()
	prog, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(prog)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestExample42Strata checks the stratum numbers the paper assigns in
// Example 4.2: SN(hop)=1, SN(tri_hop)=2, base link at 0.
func TestExample42Strata(t *testing.T) {
	st := compute(t, `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	if st.SN["link"] != 0 {
		t.Errorf("SN(link) = %d, want 0", st.SN["link"])
	}
	if st.SN["hop"] != 1 {
		t.Errorf("SN(hop) = %d, want 1", st.SN["hop"])
	}
	if st.SN["tri_hop"] != 2 {
		t.Errorf("SN(tri_hop) = %d, want 2", st.SN["tri_hop"])
	}
	if st.RSN[0] != 1 || st.RSN[1] != 2 {
		t.Errorf("RSN = %v", st.RSN)
	}
	if st.MaxStratum != 2 {
		t.Errorf("max = %d", st.MaxStratum)
	}
	if st.Recursive["hop"] || st.Recursive["tri_hop"] {
		t.Error("nonrecursive program")
	}
	if !st.Base["link"] || st.Base["hop"] {
		t.Errorf("base set: %v", st.Base)
	}
}

func TestNegationForcesHigherStratum(t *testing.T) {
	st := compute(t, `
		a(X) :- base(X).
		b(X) :- base(X), !a(X).
	`)
	if st.SN["b"] <= st.SN["a"] {
		t.Errorf("SN(b)=%d must exceed SN(a)=%d", st.SN["b"], st.SN["a"])
	}
}

func TestRecursionDetection(t *testing.T) {
	st := compute(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	if !st.Recursive["tc"] {
		t.Error("tc is recursive")
	}
	if st.SN["tc"] != 1 {
		t.Errorf("SN(tc) = %d, want 1", st.SN["tc"])
	}
}

func TestMutualRecursionSharesComponent(t *testing.T) {
	st := compute(t, `
		even(X) :- zero(X).
		even(Y) :- odd(X), succ(X,Y).
		odd(Y)  :- even(X), succ(X,Y).
	`)
	if !st.Recursive["even"] || !st.Recursive["odd"] {
		t.Error("mutual recursion")
	}
	if st.SCC["even"] != st.SCC["odd"] {
		t.Error("even/odd share an SCC")
	}
	if st.SN["even"] != st.SN["odd"] {
		t.Error("mutually recursive predicates share a stratum")
	}
}

func TestStratifiedNegationThroughRecursion(t *testing.T) {
	// Negation of a completed recursive predicate is fine.
	st := compute(t, `
		tc(X,Y)       :- link(X,Y).
		tc(X,Y)       :- tc(X,Z), link(Z,Y).
		unreach(X,Y)  :- node(X), node(Y), !tc(X,Y).
	`)
	if st.SN["unreach"] <= st.SN["tc"] {
		t.Error("unreach above tc")
	}
}

func TestUnstratifiableNegationRejected(t *testing.T) {
	prog, err := parser.ParseRules(`
		p(X) :- base(X), !q(X).
		q(X) :- base(X), !p(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(prog); err == nil {
		t.Fatal("negation cycle must be rejected")
	} else if _, ok := err.(*NotStratifiedError); !ok {
		t.Fatalf("error type: %T", err)
	}
}

func TestUnstratifiableAggregationRejected(t *testing.T) {
	prog, err := parser.ParseRules(`
		p(X, M) :- q(X), groupby(p(X, C), [X], M = sum(C)).
	`)
	// Validation itself rejects direct self-aggregation; build a two-step
	// cycle instead to exercise the strata check.
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := parser.ParseRules(`
		p(X, C) :- r(X, C).
		p(X, M) :- helper(X, M).
		helper(X, M) :- groupby(p(X, C), [X], M = sum(C)).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(prog2); err == nil {
		t.Fatal("aggregate cycle must be rejected")
	}
	_ = prog
}

func TestSelfLoopRecursive(t *testing.T) {
	st := compute(t, `p(X,Y) :- p(Y,X).`)
	if !st.Recursive["p"] {
		t.Error("self-loop is recursive")
	}
}

func TestIndependentComponentsMayShareStratum(t *testing.T) {
	st := compute(t, `
		a(X) :- base(X).
		b(X) :- other(X).
	`)
	if st.SN["a"] != 1 || st.SN["b"] != 1 {
		t.Errorf("independent views share stratum 1: a=%d b=%d", st.SN["a"], st.SN["b"])
	}
}

func TestRulesByStratumAndPredsInStratum(t *testing.T) {
	prog, err := parser.ParseRules(`
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		hop2(X,Y)    :- link(X,Z), link(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(prog)
	if err != nil {
		t.Fatal(err)
	}
	by := st.RulesByStratum(prog)
	if len(by[1]) != 2 || len(by[2]) != 1 {
		t.Fatalf("byStratum: %v", by)
	}
	p1 := st.PredsInStratum(1)
	if len(p1) != 2 || p1[0] != "hop" || p1[1] != "hop2" {
		t.Fatalf("preds in 1: %v", p1)
	}
}

func TestDeepChainStrata(t *testing.T) {
	// A 5-level dependency chain: SN must increase by 1 per level.
	prog, err := parser.ParseRules(`
		v1(X) :- base(X).
		v2(X) :- v1(X).
		v3(X) :- v2(X).
		v4(X) :- v3(X).
		v5(X) :- v4(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		pred := []string{"", "v1", "v2", "v3", "v4", "v5"}[i]
		if st.SN[pred] != i {
			t.Errorf("SN(%s) = %d, want %d", pred, st.SN[pred], i)
		}
	}
}

// TestTarjanLargeCycle exercises the iterative SCC on a deep recursion
// that would overflow a naive recursive implementation only at much
// larger sizes; here it checks a long mutual-recursion ring collapses to
// one component.
func TestTarjanLargeCycle(t *testing.T) {
	src := ""
	n := 50
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		src += ringRule(i, next)
	}
	prog, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(prog)
	if err != nil {
		t.Fatal(err)
	}
	c0 := st.SCC[ringName(0)]
	for i := 1; i < n; i++ {
		if st.SCC[ringName(i)] != c0 {
			t.Fatalf("ring must be one SCC; p%d differs", i)
		}
	}
	if !st.Recursive[ringName(0)] {
		t.Error("ring is recursive")
	}
}

func ringName(i int) string {
	return "p" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func ringRule(i, next int) string {
	return ringName(i) + "(X) :- " + ringName(next) + "(X).\n"
}

package ivm

// Replica-state transfer: the full-state form of a Views that a
// replication follower uses to bootstrap (or resynchronize) before
// tailing delta records. The state ships as program text plus a facts
// delta script — the same textual forms the WAL and checkpoints already
// round-trip — so a follower rebuilding from it converges bit-identical
// to the primary at the stamped version.

import (
	"fmt"

	"ivm/internal/eval"
)

// ReplicaState is everything a follower needs to reproduce a primary's
// Views at one version: the program, the stored base facts (as an
// insert-only delta script, counts included), the hidden-predicate set,
// and the engine configuration that must match for derived state to be
// bit-identical.
type ReplicaState struct {
	Program   string
	Hidden    []string
	Facts     string
	Strategy  string
	Semantics string
}

// ReplicaState captures the snapshot's full state for replication
// transfer. Facts covers exactly the non-derived stored relations; the
// derived relations are reproduced by materializing Program over them.
func (s *Snapshot) ReplicaState() ReplicaState {
	derived := s.v.prog.DerivedPreds()
	u := NewUpdate()
	for pred, vr := range s.v.rels {
		if derived[pred] {
			continue
		}
		for _, row := range vr.Flat().SortedRows() {
			u.InsertTuple(pred, row.Tuple, row.Count)
		}
	}
	return ReplicaState{
		Program:   s.v.programSrc,
		Hidden:    s.views.hiddenLocked(),
		Facts:     u.String(),
		Strategy:  s.views.strategy.String(),
		Semantics: s.views.cfg.semantics.String(),
	}
}

// replicaConfigOptions maps a ReplicaState's engine configuration back
// to materialization options.
func replicaConfigOptions(st ReplicaState) ([]Option, error) {
	opts := make([]Option, 0, 2)
	switch st.Strategy {
	case "", "auto":
	case Counting.String():
		opts = append(opts, WithStrategy(Counting))
	case DRed.String():
		opts = append(opts, WithStrategy(DRed))
	case Recompute.String():
		opts = append(opts, WithStrategy(Recompute))
	case PF.String():
		opts = append(opts, WithStrategy(PF))
	default:
		return nil, fmt.Errorf("ivm: replica state names unknown strategy %q", st.Strategy)
	}
	switch st.Semantics {
	case "", eval.Set.String():
		opts = append(opts, WithSemantics(SetSemantics))
	case eval.Duplicate.String():
		opts = append(opts, WithSemantics(DuplicateSemantics))
	default:
		return nil, fmt.Errorf("ivm: replica state names unknown semantics %q", st.Semantics)
	}
	return opts, nil
}

// ViewsFromReplicaState materializes fresh Views from a transferred
// state. extra options are applied first (parallelism, tracing, ...);
// the state's strategy and semantics are applied last, since derived
// state is bit-identical to the sender's only under the same engine
// configuration.
func ViewsFromReplicaState(st ReplicaState, extra ...Option) (*Views, error) {
	cfgOpts, err := replicaConfigOptions(st)
	if err != nil {
		return nil, err
	}
	d := NewDatabase()
	if err := d.Load(st.Facts); err != nil {
		return nil, fmt.Errorf("ivm: loading replica state facts: %w", err)
	}
	v, err := d.Materialize(st.Program, append(append([]Option(nil), extra...), cfgOpts...)...)
	if err != nil {
		return nil, err
	}
	if len(st.Hidden) > 0 {
		v.hidden = make(map[string]bool, len(st.Hidden))
		for _, p := range st.Hidden {
			v.hidden[p] = true
		}
	}
	return v, nil
}

// ResetToReplicaState replaces the views' stored facts with st's,
// wholesale, and seeds the published version to version — a follower's
// resynchronization path when it is too far behind to bridge with
// deltas. The replacement runs as one Apply (delete every stored base
// row, insert every transferred row, net-merged), so readers observe a
// single atomic step from the old state to the new one; the engine
// re-derives the views incrementally from the net difference. The
// program must be unchanged: a program edit changes the rule set the
// engine was compiled for, so the caller must rebuild with
// ViewsFromReplicaState instead.
func (v *Views) ResetToReplicaState(st ReplicaState, version uint64) error {
	if st.Program != v.ProgramSource() {
		return fmt.Errorf("ivm: replica state carries a different program; rebuild the views instead of resetting")
	}
	incoming, err := ParseUpdate(st.Facts)
	if err != nil {
		return fmt.Errorf("ivm: parsing replica state facts: %w", err)
	}
	snap := v.Snapshot()
	derived := snap.v.prog.DerivedPreds()
	u := NewUpdate()
	for pred, vr := range snap.v.rels {
		if derived[pred] {
			continue
		}
		for _, row := range vr.Flat().SortedRows() {
			u.InsertTuple(pred, row.Tuple, -row.Count)
		}
	}
	u.Merge(incoming)
	if _, err := v.Apply(u); err != nil {
		return fmt.Errorf("ivm: applying replica state reset: %w", err)
	}
	v.SeedVersion(version)
	return nil
}

// CommittedRecordsAfter returns the WAL-backed commit records stamped
// with versions greater than fromExcl, in version order — the
// replication backfill source when a follower's resume point has aged
// out of the in-memory window. ok is false for views without a store
// (nothing durable to read). Records written before version stamping
// are skipped; the caller must check the returned sequence is
// contiguous from its resume point and fall back to a full state
// transfer when it is not.
func (v *Views) CommittedRecordsAfter(fromExcl uint64) (recs []CommitRecord, ok bool, err error) {
	v.wmu.Lock()
	st := v.store
	v.wmu.Unlock()
	if st == nil {
		return nil, false, nil
	}
	wrecs, err := st.TailRecords(fromExcl)
	if err != nil {
		return nil, true, err
	}
	for _, r := range wrecs {
		if r.Version == 0 {
			continue
		}
		recs = append(recs, CommitRecord{Version: r.Version, Script: r.Script, Keys: r.Keys})
	}
	return recs, true, nil
}

package ivm

// Property test: Update.String() must be a faithful serialization —
// reparsing it with ParseUpdate yields the identical update, for every
// scalar kind. This is load-bearing for durability: the WAL logs deltas
// in exactly this textual form, so a rendering that changes a value's
// identity (e.g. float 5.0 printed as "5" and reparsed as int 5) would
// silently corrupt recovered state.

import (
	"math"
	"math/rand"
	"testing"

	"ivm/internal/value"
)

func randomScalar(rng *rand.Rand) value.Value {
	switch rng.Intn(3) {
	case 0: // int, both signs, large magnitudes (MinInt64 has no literal)
		n := rng.Int63()
		if rng.Intn(2) == 0 {
			n = -n
		}
		return value.NewInt(n)
	case 1: // float: whole, fractional, tiny, huge, negative zero
		switch rng.Intn(6) {
		case 0:
			return value.NewFloat(float64(rng.Intn(100))) // whole: the 5.0 bug
		case 1:
			return value.NewFloat(-float64(rng.Intn(100)))
		case 2:
			return value.NewFloat(rng.NormFloat64())
		case 3:
			return value.NewFloat(rng.NormFloat64() * 1e21) // exponent form
		case 4:
			return value.NewFloat(rng.NormFloat64() * 1e-9)
		default:
			return value.NewFloat(math.Copysign(0, -1)) // -0.0
		}
	default: // string: identifiers, quoted forms, escapes, unicode
		alphabet := []rune(`abcXYZ019 _"\\,().:-+*π% # //`)
		n := rng.Intn(8)
		s := make([]rune, n)
		for i := range s {
			s[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return value.NewString(string(s))
	}
}

func TestPropertyUpdateStringRoundTrip(t *testing.T) {
	preds := []struct {
		name  string
		arity int
	}{{"p", 1}, {"q", 2}, {"r", 3}}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		u := NewUpdate()
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			p := preds[rng.Intn(len(preds))]
			tup := make(value.Tuple, p.arity)
			for j := range tup {
				tup[j] = randomScalar(rng)
			}
			count := int64(rng.Intn(7) - 3)
			if count == 0 {
				count = 1
			}
			u.InsertTuple(p.name, tup, count)
		}
		src := u.String()
		got, err := ParseUpdate(src)
		if err != nil {
			t.Fatalf("trial %d: ParseUpdate(%q): %v", trial, src, err)
		}
		if len(got.per) != len(u.per) {
			t.Fatalf("trial %d: %d preds reparsed from %d\nscript:\n%s", trial, len(got.per), len(u.per), src)
		}
		for pred, want := range u.per {
			have := got.per[pred]
			if have == nil {
				t.Fatalf("trial %d: predicate %s lost\nscript:\n%s", trial, pred, src)
			}
			wr, hr := want.SortedRows(), have.SortedRows()
			if len(wr) != len(hr) {
				t.Fatalf("trial %d: %s: %d rows reparsed from %d\nscript:\n%s", trial, pred, len(hr), len(wr), src)
			}
			for i := range wr {
				if !wr[i].Tuple.Equal(hr[i].Tuple) || wr[i].Count != hr[i].Count {
					t.Fatalf("trial %d: %s row %d: %v ×%d reparsed as %v ×%d\nscript:\n%s",
						trial, pred, i, wr[i].Tuple, wr[i].Count, hr[i].Tuple, hr[i].Count, src)
				}
			}
		}
	}
}

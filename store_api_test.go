package ivm_test

// Store-bound views: the crash-recovery matrix at the public API level.
// Every recovery path — snapshot only, snapshot+WAL, torn WAL tail,
// stale-epoch records — must restore state tuple-and-count identical to
// a full recomputation over the same base facts and update sequence.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ivm"
)

const storeTestProgram = `
	hop(X,Y)     :- link(X,Z), link(Z,Y).
	tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
`

const storeTestFacts = `link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`

// storeInit builds the initial views for OpenStore.
func storeInit(t *testing.T) func() (*ivm.Views, error) {
	return func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		if err := db.Load(storeTestFacts); err != nil {
			return nil, err
		}
		return db.Materialize(storeTestProgram)
	}
}

// noInit fails the test if OpenStore falls back to initialization —
// used when reopening a store that must already hold a snapshot.
func noInit(t *testing.T) func() (*ivm.Views, error) {
	return func() (*ivm.Views, error) {
		t.Fatal("init must not run: the store already holds a snapshot")
		return nil, nil
	}
}

// groundTruth recomputes the views from scratch over the base facts
// plus every script in order.
func groundTruth(t *testing.T, scripts []string) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(storeTestFacts)
	v, err := db.Materialize(storeTestProgram, ivm.WithStrategy(ivm.Recompute))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// requireSameState asserts tuple-and-count identity on every predicate.
func requireSameState(t *testing.T, got, want *ivm.Views) {
	t.Helper()
	for _, pred := range []string{"link", "hop", "tri_hop"} {
		g, w := got.Rows(pred), want.Rows(pred)
		if len(g) != len(w) {
			t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", pred, len(g), len(w), g, w)
		}
		for i := range w {
			if !g[i].Tuple.Equal(w[i].Tuple) || g[i].Count != w[i].Count {
				t.Fatalf("%s row %d: %v ×%d, want %v ×%d", pred, i, g[i].Tuple, g[i].Count, w[i].Tuple, w[i].Count)
			}
		}
	}
}

var storeTestScripts = []string{
	"+link(c,f).",
	"-link(a,b).",
	"+link(e,a). +link(f,b).",
	"-link(b,e). +link(a,b).",
}

func TestOpenStoreInitCheckpointAndWALReplay(t *testing.T) {
	dir := t.TempDir()
	v, info, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Initialized || info.Epoch != 0 {
		t.Fatalf("info: %+v", info)
	}
	for _, s := range storeTestScripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Close(); err != nil { // no Sync: recovery must replay the WAL
		t.Fatal(err)
	}

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if info.Epoch != 1 || info.Replayed != len(storeTestScripts) || info.SkippedStale != 0 {
		t.Fatalf("info: %+v", info)
	}
	requireSameState(t, v2, groundTruth(t, storeTestScripts))
}

func TestOpenStoreSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range storeTestScripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	v.Close()

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if info.Replayed != 0 || info.Epoch != 2 {
		t.Fatalf("info: %+v", info)
	}
	requireSameState(t, v2, groundTruth(t, storeTestScripts))
}

func TestOpenStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range storeTestScripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	v.Close()
	// A crash mid-append: garbage shorter than a record header.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9})
	f.Close()

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if !info.TornTail || info.Replayed != len(storeTestScripts) {
		t.Fatalf("info: %+v", info)
	}
	requireSameState(t, v2, groundTruth(t, storeTestScripts))
}

func TestOpenStoreStaleEpochRecords(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range storeTestScripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	v.Close()
	// Crash in the checkpoint-vs-truncate window: the snapshot rename
	// was durable but the WAL truncate was not.
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if info.SkippedStale != len(storeTestScripts) || info.Replayed != 0 {
		t.Fatalf("stale records must be skipped, not double-applied: %+v", info)
	}
	requireSameState(t, v2, groundTruth(t, storeTestScripts))
}

func TestOpenStoreGroupCommitConcurrentAppliers(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t), ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				script := fmt.Sprintf("+link(w%d_%d, sink).", w, i)
				if _, err := v.ApplyScript(script); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v.Close()

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	// Coalescing merges concurrent updates into one WAL record per
	// batch, so the record count is between 1 (everything coalesced)
	// and writers*perWriter (no coalescing at all).
	if info.Replayed < 1 || info.Replayed > writers*perWriter {
		t.Fatalf("replayed %d records, want between 1 and %d", info.Replayed, writers*perWriter)
	}
	// Insert-only scripts commute, so order differences cannot matter.
	var all []string
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			all = append(all, fmt.Sprintf("+link(w%d_%d, sink).", w, i))
		}
	}
	requireSameState(t, v2, groundTruth(t, all))
}

func TestOpenStoreFloatDeltaIdentitySurvivesWAL(t *testing.T) {
	// Regression for the 5.0-renders-as-5 bug: a float-valued delta
	// logged through the WAL must recover as a float, not an int.
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		return db.Materialize(`w(X, C) :- m(X, C), C > 1.0.`)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(ivm.NewUpdate().Insert("m", "a", 5.0).Insert("m", "b", int64(3))); err != nil {
		t.Fatal(err)
	}
	v.Close()

	v2, _, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Count("m", "a", 5.0) != 1 || v2.Count("m", "a", int64(5)) != 0 {
		t.Fatal("float 5.0 changed identity through the WAL")
	}
	if v2.Count("m", "b", int64(3)) != 1 {
		t.Fatal("int 3 must stay an int")
	}
	// Deleting the float tuple by value must work after recovery.
	if _, err := v2.Apply(ivm.NewUpdate().Delete("m", "a", 5.0)); err != nil {
		t.Fatalf("delete of recovered float tuple: %v", err)
	}
}

func TestOpenStoreRuleEditCheckpoints(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c). tunnel(c,d).`)
		return db.Materialize(`
			reach(X,Y) :- link(X,Y).
			reach(X,Y) :- reach(X,Z), link(Z,Y).
		`)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddRule(`reach(X,Y) :- tunnel(X,Y).`); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyScript(`+tunnel(d,e).`); err != nil {
		t.Fatal(err)
	}
	v.Close()

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	// The rule edit checkpointed (epoch 2); only the later delta replays.
	if info.Epoch != 2 || info.Replayed != 1 {
		t.Fatalf("info: %+v", info)
	}
	if len(v2.Program().Rules) != 3 {
		t.Fatalf("rules: %v", v2.Program().Rules)
	}
	for _, want := range [][2]string{{"a", "c"}, {"c", "d"}, {"d", "e"}} {
		if !v2.Has("reach", want[0], want[1]) {
			t.Fatalf("reach(%s,%s) missing after recovery", want[0], want[1])
		}
	}
}

func TestOpenStoreMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if _, err := v.ApplyScript("+link(x,y)."); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := v.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, series := range []string{"storage_wal_appends_total 1", "storage_checkpoints_total 1", "storage_wal_fsync_count"} {
		if !strings.Contains(out, series) {
			t.Fatalf("metrics exposition missing %q:\n%s", series, out)
		}
	}
	if dirGot, ok := v.Store(); !ok || dirGot != dir {
		t.Fatalf("Store() = %q, %v", dirGot, ok)
	}
}

func TestOpenStoreApplyAfterCloseFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// The store binding must survive Close: a later Apply or Sync has to
	// surface ErrStoreClosed instead of silently succeeding in memory
	// with no WAL record behind it.
	if _, err := v.ApplyScript("+link(x,y)."); !errors.Is(err, ivm.ErrStoreClosed) {
		t.Fatalf("Apply after Close: %v, want ErrStoreClosed", err)
	}
	if err := v.Sync(); !errors.Is(err, ivm.ErrStoreClosed) {
		t.Fatalf("Sync after Close: %v, want ErrStoreClosed", err)
	}
	if err := v.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}
	if _, ok := v.Store(); !ok {
		t.Fatal("Store() must still report the binding after Close")
	}
}

func TestOpenStoreRejectsNonFiniteFloats(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		return db.Materialize(`w(X, C) :- m(X, C), C > 1.0.`)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	// NaN/±Inf have no parseable literal syntax, so a WAL record holding
	// one could never replay; store-bound views must reject the update
	// before applying it in memory.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := v.Apply(ivm.NewUpdate().Insert("m", "a", bad)); err == nil {
			t.Fatalf("store-bound Apply must reject %v", bad)
		}
		if rows := v.Rows("m"); len(rows) != 0 {
			t.Fatalf("rejected update must not mutate state: m = %v", rows)
		}
	}
	// Finite floats stay accepted.
	if _, err := v.Apply(ivm.NewUpdate().Insert("m", "a", 2.5)); err != nil {
		t.Fatal(err)
	}

	// Memory-only views (no store) keep accepting non-finite floats.
	db := ivm.NewDatabase()
	mem, err := db.Materialize(`w(X, C) :- m(X, C), C > 1.0.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Apply(ivm.NewUpdate().Insert("m", "a", math.Inf(1))); err != nil {
		t.Fatalf("memory-only views must accept non-finite floats: %v", err)
	}
}

func TestOpenStoreWALRepairOptIn(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range storeTestScripts {
		if _, err := v.ApplyScript(s); err != nil {
			t.Fatal(err)
		}
	}
	v.Close()
	// Flip a byte inside the second record's payload: mid-WAL corruption
	// with acknowledged records behind it.
	wal := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	const walHeader = 24
	data[walHeader+len(storeTestScripts[0])+walHeader+1] ^= 0x20
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ivm.OpenStore(dir, noInit(t)); err == nil {
		t.Fatal("OpenStore must refuse mid-WAL corruption without WithWALRepair")
	}
	v2, info, err := ivm.OpenStore(dir, noInit(t), ivm.WithWALRepair())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if info.CorruptRecords != 1 || info.Replayed != 1 {
		t.Fatalf("info: %+v", info)
	}
	requireSameState(t, v2, groundTruth(t, storeTestScripts[:1]))
}

// Quickstart: the paper's running example (Example 1.1).
//
// Materialize the hop view over a link relation, watch the stored
// derivation counts, delete link(a,b), and see the counting algorithm
// remove exactly the tuples that lost their last derivation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	// link = {ab, bc, be, ad, dc} — Example 1.1's base relation.
	db.MustLoad(`
		link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).
	`)

	// hop(c,d) holds when c reaches d in exactly two links. Duplicate
	// semantics keeps SQL multiset counts, so hop(a,c) — derivable via b
	// and via d — carries count 2.
	views, err := db.Materialize(
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strategy:", views.Strategy()) // counting (auto-selected)
	fmt.Println("initial hop view (tuple → derivation count):")
	printRows(views.Rows("hop"))

	// Delete link(a,b). hop(a,e) loses its only derivation; hop(a,c)
	// drops from 2 derivations to 1 and must survive.
	changes, err := views.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter -link(a,b):")
	fmt.Print(changes) // Δ notation, like the paper

	fmt.Println("\nmaintained hop view:")
	printRows(views.Rows("hop"))

	if views.Has("hop", "a", "c") && !views.Has("hop", "a", "e") {
		fmt.Println("\nhop(a,c) survived (one derivation left); hop(a,e) is gone — exactly Example 1.1.")
	}
}

func printRows(rows []ivm.Row) {
	for _, r := range rows {
		fmt.Printf("  hop%v  count=%d\n", r.Tuple, r.Count)
	}
}

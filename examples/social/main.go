// Social: a multi-stratum social-network workload combining joins,
// negation and aggregation on one database — friend recommendation
// ("friends of friends I don't already follow"), influencer detection,
// and the set-semantics cascade cut (statement (2) of Algorithm 4.1)
// observable through the engine's statistics.
//
// Run with:
//
//	go run ./examples/social
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	db.MustLoad(`
		follows(ann, bob).  follows(bob, cay).  follows(cay, dee).
		follows(ann, cay).  follows(dee, ann).  follows(eve, ann).
		follows(eve, bob).  follows(bob, dee).
	`)

	views, err := db.Materialize(`
		% Two-step follow chains.
		fof(X, Y)       :- follows(X, Z), follows(Z, Y).

		% Recommend accounts reachable in two steps that X does not
		% already follow (and that are not X) — negation.
		suggest(X, Y)   :- fof(X, Y), !follows(X, Y), X != Y.

		% Follower counts and influencers — aggregation above a join.
		followers(Y, N) :- groupby(follows(X, Y), [Y], N = count(X)).
		influencer(Y)   :- followers(Y, N), N >= 3.

		% Mutual follows.
		mutual(X, Y)    :- follows(X, Y), follows(Y, X).
	`, ivm.WithSemantics(ivm.SetSemantics))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("suggestions:", tuples(views, "suggest"))
	fmt.Println("influencers:", tuples(views, "influencer"))
	fmt.Println("mutual:", tuples(views, "mutual"))

	// Ann follows one of her suggestions: the suggestion disappears (the
	// negated subgoal now holds) and dee's follower count rises.
	fmt.Println("\n+follows(ann, dee):")
	ch, err := views.Apply(ivm.NewUpdate().Insert("follows", "ann", "dee"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	fmt.Println("influencers now:", tuples(views, "influencer"))

	// The engine statistics expose how much delta work an update needs;
	// under set semantics, statement (2) of Algorithm 4.1 stops the
	// cascade whenever counts move but a relation's set image does not.
	fmt.Println("\n+follows(dee, cay):")
	ch, err = views.Apply(ivm.NewUpdate().Insert("follows", "dee", "cay"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	if st, ok := views.CountingStats(); ok {
		fmt.Printf("delta rules fired: %d, cascades stopped by statement (2): %d\n",
			st.DeltaRulesEvaluated, st.CascadeStopped)
	}

	// ann→bob→dee and ann→cay→dee both derive fof(ann, dee): removing
	// one leg costs that tuple a derivation but not its membership, so
	// Δ(fof) must NOT contain (ann, dee) — the counting algorithm knows a
	// derivation survives without recomputing anything.
	fmt.Println("\n-follows(ann, cay) (fof(ann,dee) keeps a derivation):")
	ch, err = views.Apply(ivm.NewUpdate().Delete("follows", "ann", "cay"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	if st, ok := views.CountingStats(); ok {
		fmt.Printf("delta rules fired: %d, cascades stopped by statement (2): %d\n",
			st.DeltaRulesEvaluated, st.CascadeStopped)
	}

	// An account deletion in bulk: eve leaves; every edge she touches
	// goes in one maintenance batch.
	fmt.Println("\neve leaves the network:")
	u := ivm.NewUpdate().
		Delete("follows", "eve", "ann").
		Delete("follows", "eve", "bob")
	ch, err = views.Apply(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	fmt.Println("influencers now:", tuples(views, "influencer"))
}

func tuples(v *ivm.Views, pred string) []string {
	var out []string
	for _, r := range v.Rows(pred) {
		out = append(out, r.Tuple.String())
	}
	return out
}

// Reachability: recursive transitive closure over a network topology,
// maintained by the DRed algorithm (paper Section 7).
//
// The scenario is a small data-center fabric: hosts connect through
// switches; the reachable view answers "which hosts can talk". Link
// failures delete tuples (DRed overestimates, then rederives pairs that
// survive via redundant paths); repairs insert them back; and the view
// definition itself is extended at runtime with a maintenance rule
// (Section 7's rule insertion).
//
// Run with:
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	// Two redundant spines (s1, s2) connecting four leaves; hosts hang
	// off leaves. Directed edges both ways model the duplex links.
	db.MustLoad(`
		link(leaf1, s1). link(s1, leaf1).
		link(leaf1, s2). link(s2, leaf1).
		link(leaf2, s1). link(s1, leaf2).
		link(leaf2, s2). link(s2, leaf2).
		link(leaf3, s1). link(s1, leaf3).
		link(leaf3, s2). link(s2, leaf3).
		link(h1, leaf1). link(leaf1, h1).
		link(h2, leaf2). link(leaf2, h2).
		link(h3, leaf3). link(leaf3, h3).
	`)

	views, err := db.Materialize(`
		reach(X,Y) :- link(X,Y).
		reach(X,Y) :- reach(X,Z), link(Z,Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", views.Strategy()) // dred (recursive program)
	fmt.Printf("initially %d reachable pairs; h1→h3: %v\n",
		len(views.Rows("reach")), views.Has("reach", "h1", "h3"))

	// Spine s1 loses its link to leaf3 — redundancy via s2 must keep h1→h3.
	changes, err := views.ApplyScript(`-link(s1, leaf3). -link(leaf3, s1).`)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := views.DRedStats()
	fmt.Printf("\nafter losing s1↔leaf3: %d pairs deleted, %d overestimated, %d rederived\n",
		len(changes.Deleted("reach")), st.Overestimated, st.Rederived)
	fmt.Println("h1→h3 still reachable (via s2):", views.Has("reach", "h1", "h3"))

	// Now the whole second spine fails: leaf3 is cut off.
	if _, err := views.ApplyScript(`-link(s2, leaf3). -link(leaf3, s2).`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after losing s2↔leaf3, h1→h3 reachable:", views.Has("reach", "h1", "h3"))

	// Repair crews bring a direct leaf2↔leaf3 cable up.
	ch, err := views.ApplyScript(`+link(leaf2, leaf3). +link(leaf3, leaf2).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the repair, %d pairs inserted; h1→h3 reachable: %v\n",
		len(ch.Inserted("reach")), views.Has("reach", "h1", "h3"))

	// Extend the view definition at runtime: tunnels also provide
	// reachability. DRed folds the new rule's derivations in
	// incrementally — no recomputation of the whole closure.
	if _, err := views.AddRule(`reach(X,Y) :- tunnel(X,Y).`); err != nil {
		log.Fatal(err)
	}
	ch, err = views.Apply(ivm.NewUpdate().Insert("tunnel", "h1", "remote9"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adding the tunnel rule and tunnel(h1, remote9): %d new pairs\n",
		len(ch.Inserted("reach")))
	fmt.Println("h1→remote9 reachable:", views.Has("reach", "h1", "remote9"))
}

// Aggregation: the paper's min_cost_hop view (Example 6.2) plus SUM /
// COUNT / AVG order-analytics views, maintained by Algorithm 6.1's
// per-group incremental computation.
//
// The scenario: a shipping network with weighted legs, and an order book.
// Only the groups touched by a change are recomputed; MIN falls back to a
// group rescan exactly when the current minimum leaves (the
// non-incrementally-computable case of [DAJ91]).
//
// Run with:
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	// link(Src, Dst, Cost): weighted shipping legs.
	db.MustLoad(`
		link(nyc, chi, 10). link(chi, sfo, 20). link(chi, den, 5).
		link(nyc, atl, 15). link(atl, sfo, 6).
	`)
	// orders(Id, Customer, Amount)
	db.MustLoad(`
		orders(1, acme, 120). orders(2, acme, 80). orders(3, zenith, 50).
	`)

	views, err := db.Materialize(`
		% Two-leg routes with total cost (arithmetic in the head).
		hop(S, D, C1+C2)    :- link(S, I, C1), link(I, D, C2).

		% Example 6.2: cheapest two-leg route per (source, destination).
		min_cost_hop(S,D,M) :- groupby(hop(S, D, C), [S, D], M = min(C)).

		% Order analytics: spend, order count and average per customer.
		spend(Cust, Total)  :- groupby(orders(Id, Cust, Amt), [Cust], Total = sum(Amt)).
		norders(Cust, N)    :- groupby(orders(Id, Cust, Amt), [Cust], N = count(Id)).
		avgorder(Cust, A)   :- groupby(orders(Id, Cust, Amt), [Cust], A = avg(Amt)).

		% Customers whose total spend clears a threshold.
		vip(Cust)           :- spend(Cust, Total), Total > 150.
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("min_cost_hop:")
	for _, r := range views.Rows("min_cost_hop") {
		fmt.Printf("  %v\n", r.Tuple)
	}
	fmt.Println("spend:", tuples(views, "spend"), " vip:", tuples(views, "vip"))

	// A cheaper middle leg appears: nyc→chi→sfo stays 30, but
	// nyc→atl→sfo is 21; insert an even cheaper atl leg.
	fmt.Println("\n+link(atl, sfo, 2): the nyc→sfo minimum drops")
	ch, err := views.ApplyScript(`+link(atl, sfo, 2).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)

	// Delete the current minimum: Algorithm 6.1 rescans just that group.
	fmt.Println("\n-link(atl, sfo, 2): the group rescans back to the previous minimum")
	ch, err = views.ApplyScript(`-link(atl, sfo, 2).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)

	// Order flow: zenith places a big order and crosses the VIP line.
	fmt.Println("\n+orders(4, zenith, 200):")
	ch, err = views.Apply(ivm.NewUpdate().Insert("orders", 4, "zenith", 200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	fmt.Println("vip now:", tuples(views, "vip"))

	// A return: acme's order 2 is cancelled; spend and avg adjust, and if
	// acme drops below the threshold the vip tuple disappears.
	fmt.Println("\n-orders(2, acme, 80):")
	ch, err = views.Apply(ivm.NewUpdate().Delete("orders", 2, "acme", 80))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	fmt.Println("vip now:", tuples(views, "vip"))
}

func tuples(v *ivm.Views, pred string) []string {
	var out []string
	for _, r := range v.Rows(pred) {
		out = append(out, r.Tuple.String())
	}
	return out
}

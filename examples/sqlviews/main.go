// SQL views: the paper's introduction defines views in SQL (Example 1.1's
// CREATE VIEW); this example drives the same engine entirely through the
// SQL front end — schema, data, joins, NOT EXISTS and GROUP BY — and
// maintains everything incrementally.
//
// Run with:
//
//	go run ./examples/sqlviews
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	views, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES
		  ('a','b'), ('b','c'), ('b','e'), ('a','d'), ('d','c');

		-- Example 1.1, verbatim shape.
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;

		-- A second stratum over the first.
		CREATE VIEW tri_hop(s, d) AS
		  SELECT h.s, l.d FROM hop h, link l WHERE h.d = l.s;

		-- Example 6.1's negation, in SQL.
		CREATE VIEW only_tri_hop(s, d) AS
		  SELECT t.s, t.d FROM tri_hop t
		  WHERE NOT EXISTS (SELECT * FROM hop h WHERE h.s = t.s AND h.d = t.d);

		-- Fan-out analytics with GROUP BY + HAVING.
		CREATE VIEW fanout(s, n) AS
		  SELECT s, COUNT(*) AS n FROM link GROUP BY s HAVING COUNT(*) >= 2;
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("translated program:")
	fmt.Print(indent(views.ProgramSource()))

	show := func(pred string) {
		fmt.Printf("%s = ", pred)
		for i, r := range views.Rows(pred) {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(r.Tuple)
			if r.Count != 1 {
				fmt.Printf("×%d", r.Count)
			}
		}
		fmt.Println()
	}
	fmt.Println("\ninitial state:")
	show("hop")
	show("tri_hop")
	show("only_tri_hop")
	show("fanout")

	// The paper's deletion, via the same Update API as Datalog views.
	fmt.Println("\nafter DELETE link('a','b'):")
	ch, err := views.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	show("hop")
	show("fanout")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

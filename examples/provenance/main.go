// Provenance: the counting algorithm stores only the *number* of
// derivations ("we store only the number of derivations, not the
// derivations themselves", paper Section 1). This example shows the two
// sides of that trade: counts answer "how robust is this tuple?" for
// free, and Explain enumerates the actual derivations on demand —
// here for auditing which suppliers support which deliverable parts.
//
// Run with:
//
//	go run ./examples/provenance
package main

import (
	"fmt"
	"log"

	"ivm"
)

func main() {
	db := ivm.NewDatabase()
	db.MustLoad(`
		supplies(acme,  bolts).  supplies(acme,  nuts).
		supplies(bcorp, bolts).  supplies(bcorp, plates).
		supplies(cinc,  nuts).
		needs(widget, bolts).    needs(widget, nuts).
		needs(gadget, plates).
	`)
	views, err := db.Materialize(`
		% A part is sourced if some supplier provides it; counts = #suppliers.
		sourced(Part)          :- supplies(Sup, Part).
		% A product is buildable from a given supplier pair...
		can_build(Prod)        :- needs(Prod, Part), supplies(Sup, Part).
		% ...and at risk if some needed part has no supplier.
		at_risk(Prod)          :- needs(Prod, Part), !sourced(Part).
		% Supplier criticality: how many needed parts they cover.
		coverage(Sup, N)       :- groupby(cover(Sup, Part), [Sup], N = count(Part)).
		cover(Sup, Part)       :- supplies(Sup, Part), needs(Prod, Part).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		log.Fatal(err)
	}

	// Counts as robustness: sourced(bolts) has two derivations (acme,
	// bcorp) — losing one supplier cannot unsource it.
	for _, part := range []string{"bolts", "nuts", "plates"} {
		fmt.Printf("sourced(%s): %d supplier derivation(s)\n", part, views.Count("sourced", part))
	}

	// Explain: which concrete facts support sourced(bolts)?
	ds, err := views.Explain(`sourced(bolts)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderivations of sourced(bolts):")
	for i, d := range ds {
		fmt.Printf("  %d. via %s\n", i+1, d.Rule)
		for _, sg := range d.Subgoals {
			fmt.Printf("     %s%s\n", sg.Pred, sg.Tuple)
		}
	}

	// Query: pattern search with bindings.
	res, err := views.Query(`coverage(Sup, N)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsupplier coverage of needed parts:")
	for _, r := range res {
		fmt.Printf("  %s covers %s needed part(s)\n", r.Bindings["Sup"], r.Bindings["N"])
	}

	// Incremental what-if: bcorp exits the market.
	fmt.Println("\nbcorp exits:")
	ch, err := views.ApplyScript(`-supplies(bcorp, bolts). -supplies(bcorp, plates).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ch)
	fmt.Println("bolts still sourced (acme remains):", views.Has("sourced", "bolts"))
	fmt.Println("gadget now at risk:", views.Has("at_risk", "gadget"))

	// Drill into the risk.
	ds, err = views.Explain(`at_risk(gadget)`)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range ds {
		fmt.Println("because:")
		for _, sg := range d.Subgoals {
			mark := ""
			if sg.Negated {
				mark = "no "
			}
			fmt.Printf("  %s%s%s\n", mark, sg.Pred, sg.Tuple)
		}
	}
}

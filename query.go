package ivm

import (
	"ivm/internal/datalog"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// QueryResult is one match of a query goal: the matched row plus the
// values bound to each variable of the goal.
type QueryResult struct {
	Row      Row
	Bindings map[string]Value
}

// Query matches a single goal pattern against a stored (base or derived)
// relation and returns the matching rows with their variable bindings:
//
//	results, err := v.Query(`hop(a, X)`)        // all hops from a
//	results, err := v.Query(`link(X, X)`)       // self-loops
//	results, err := v.Query(`min_cost_hop(a, b, M)`)
//
// Upper-case identifiers are variables (repeated variables must agree),
// lower-case identifiers, numbers and strings are constants. Rows carry
// the stored derivation counts.
//
// The goal is matched against the current published version: lock-free,
// never blocked by Apply. For several consistent queries, pin one
// version with Snapshot.
func (v *Views) Query(goal string) ([]QueryResult, error) {
	a, err := parser.ParseGoal(goal)
	if err != nil {
		return nil, err
	}
	rel := v.cur.Load().reader(a.Pred)
	if rel == nil {
		return nil, nil
	}
	return matchGoal(a, rel), nil
}

// matchGoal enumerates rel rows matching the atom pattern.
func matchGoal(a datalog.Atom, rel relation.Reader) []QueryResult {
	// Bound columns (constants) drive an index lookup when present.
	// Lookup may build an index lazily, but that build is synchronized
	// inside the relation package, so concurrent matches are safe on a
	// shared frozen relation.
	var cols []int
	var key value.Tuple
	for i, t := range a.Args {
		if c, ok := t.(datalog.Const); ok {
			cols = append(cols, i)
			key = append(key, c.Value)
		}
	}
	var rows []Row
	if len(cols) > 0 {
		rows = rel.Lookup(cols, key)
	} else {
		rel.Each(func(row Row) { rows = append(rows, row) })
	}

	var out []QueryResult
	for _, row := range rows {
		if len(row.Tuple) != len(a.Args) {
			continue
		}
		bind := make(map[string]Value)
		ok := true
		for i, t := range a.Args {
			switch x := t.(type) {
			case datalog.Const:
				if !x.Value.Equal(row.Tuple[i]) {
					ok = false
				}
			case datalog.Var:
				if prev, seen := bind[string(x)]; seen {
					if !prev.Equal(row.Tuple[i]) {
						ok = false
					}
				} else {
					bind[string(x)] = row.Tuple[i]
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, QueryResult{Row: row, Bindings: bind})
		}
	}
	// Deterministic order for callers and tests.
	sortQueryResults(out)
	return out
}

func sortQueryResults(rs []QueryResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Row.Tuple.Compare(rs[j-1].Row.Tuple) < 0; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

package client

// Apply retry/backoff: the exactly-once half the client owns. An apply
// whose connection died or timed out is indistinguishable from one that
// committed with a lost ack, so every apply carries an Idempotency-Key
// and retryable failures are re-sent under the same key — the server
// answers a duplicate from its dedup window (DESIGN.md §13) instead of
// applying twice, which makes blind retry safe.

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// RetryPolicy bounds Apply/ApplyWithKey retries. Attempt n (0-based)
// waits BaseDelay·2ⁿ⁻¹ before re-sending, equal-jittered (half fixed,
// half uniform random) and capped at MaxDelay; a server Retry-After
// hint raises the wait to at least the hint (still capped at MaxDelay).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (minimum 1; values < 1 mean DefaultRetryPolicy.MaxAttempts).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy New installs: 6 attempts, 50ms base
// delay doubling to a 2s cap — about 3s of patience in the worst case.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 6, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// Backoff returns the jittered wait before retry number retry (1-based),
// honoring a server Retry-After hint. Exported so cooperating loops
// (subscription resume, replication followers) pace their reconnects by
// the same policy applies do.
func (p RetryPolicy) Backoff(retry int, hint time.Duration) time.Duration {
	d := p.BaseDelay << (retry - 1)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if hint > d {
		d = hint
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// Stats are cumulative client-side counters, read with Client.Stats.
type Stats struct {
	// Applies counts Apply/ApplyWithKey calls (not attempts).
	Applies uint64
	// Retries counts re-sent attempts after retryable failures.
	Retries uint64
	// Deduped counts applies acknowledged from the server's idempotency
	// window — i.e. retries that would have double-applied without it.
	Deduped uint64
}

type stats struct {
	applies atomic.Uint64
	retries atomic.Uint64
	deduped atomic.Uint64
}

// Stats returns a snapshot of the client's cumulative apply counters.
func (c *Client) Stats() Stats {
	return Stats{
		Applies: c.stats.applies.Load(),
		Retries: c.stats.retries.Load(),
		Deduped: c.stats.deduped.Load(),
	}
}

// newIdempotencyKey generates a 128-bit random hex key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero key
		// would silently dedup unrelated applies, so fail loudly.
		panic(fmt.Sprintf("ivmd client: generating idempotency key: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// ApplyWithKey is Apply under a caller-chosen idempotency key: all
// calls with the same key apply the script at most once server-side,
// even across client restarts (for store-bound servers the key survives
// crash recovery with the WAL). The key must be non-empty and at most
// 256 bytes. Retries and backoff behave exactly as in Apply.
func (c *Client) ApplyWithKey(ctx context.Context, key, script string) (*ApplyResult, error) {
	if key == "" {
		return nil, fmt.Errorf("ivmd: empty idempotency key (use Apply for a generated one)")
	}
	c.stats.applies.Add(1)
	p := c.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			if err := sleepCtx(ctx, p.Backoff(attempt, retryAfterOf(lastErr))); err != nil {
				return nil, fmt.Errorf("ivmd: apply canceled while retrying: %w (last attempt: %v)", err, lastErr)
			}
		}
		out, err := c.applyOnce(ctx, key, script)
		if err == nil {
			if out.Deduped {
				c.stats.deduped.Add(1)
			}
			return out, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("ivmd: apply gave up after %d attempts: %w", p.MaxAttempts, lastErr)
}

// applyOnce is a single keyed POST /v1/apply attempt.
func (c *Client) applyOnce(ctx context.Context, key, script string) (*ApplyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/apply", strings.NewReader(script))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("Idempotency-Key", key)
	var out ApplyResult
	if err := c.roundTrip(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// retryable classifies an attempt's failure. Server responses are
// retried only on 503 (shutdown, store closed, request timeout — all
// advertised with Retry-After); other statuses are the caller's bug or
// data and would fail identically again. Anything that never produced a
// status — refused/reset connections, dial or response-header timeouts
// — is retried, except the caller's own context ending.
func retryable(err error) bool {
	var apiErr *apiError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// retryAfterOf extracts the server's Retry-After hint, if err carried
// one.
func retryAfterOf(err error) time.Duration {
	var apiErr *apiError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

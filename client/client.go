// Package client is the Go client for ivmd, the ivm serving daemon:
// applies, lock-free reads, snapshot-pinned repeatable-read sessions,
// and streaming change subscriptions over plain HTTP/JSON. It depends
// only on the standard library (not on the engine), so it embeds
// cheaply in consumer services.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to one ivmd server. Safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	stats stats
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:7199"). The optional http.Client configures
// transport-level behavior; nil gets a transport with dial,
// TLS-handshake, and response-header timeouts (so a hung server or
// black-holed connection fails an attempt instead of blocking forever)
// but no overall request timeout — Subscribe streams stay open
// indefinitely, bounded only by their context; only their headers are
// subject to the response-header timeout. If you pass your own
// http.Client, give it no overall Timeout for the same reason.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport()}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, retry: DefaultRetryPolicy}
}

// defaultTransport bounds every phase of a request except reading the
// body, which streaming subscriptions need unbounded.
func defaultTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		MaxIdleConnsPerHost:   16,
	}
}

// SetRetryPolicy replaces the apply retry policy (DefaultRetryPolicy
// until set). Call before issuing requests; it is not synchronized with
// in-flight calls.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// apiError is a non-2xx response decoded from the server.
type apiError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // parsed Retry-After hint (0 = none)
}

func (e *apiError) Error() string {
	return fmt.Sprintf("ivmd: %s (http %d)", e.Message, e.Status)
}

// errorFromResponse decodes a non-2xx response body into an apiError.
func errorFromResponse(status int, header http.Header, data []byte) *apiError {
	e := &apiError{Status: status, Message: strings.TrimSpace(string(data))}
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		e.Message = er.Error
	}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	return e
}

func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.roundTrip(req, out)
}

// roundTrip executes one prepared request and decodes the response.
func (c *Client) roundTrip(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return errorFromResponse(resp.StatusCode, resp.Header, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Apply submits a delta script (`+link(a,b). -link(b,c).`). On success
// the update is applied to every view — and, for store-bound servers,
// durably logged — and the result names the version in which its
// effects became visible.
//
// Apply is exactly-once under failure: it stamps the request with a
// generated Idempotency-Key and retries transport errors, timeouts, and
// 503s with exponential backoff (see RetryPolicy), so a retry of an
// apply whose ack was lost is answered from the server's dedup window
// instead of applying twice. Use ApplyWithKey to control the key across
// client restarts.
func (c *Client) Apply(ctx context.Context, script string) (*ApplyResult, error) {
	return c.ApplyWithKey(ctx, newIdempotencyKey(), script)
}

// Query matches a goal pattern (`hop(a,X)`) against the current
// published version.
func (c *Client) Query(ctx context.Context, goal string) (*QueryResponse, error) {
	return queryAt(ctx, c, "", goal)
}

// Rows returns the stored rows of a relation at the current version.
func (c *Client) Rows(ctx context.Context, pred string) (*RowsResponse, error) {
	return rowsAt(ctx, c, "", pred)
}

// Count returns the derivation count of a ground goal (`hop(a,c)`).
func (c *Client) Count(ctx context.Context, goal string) (*CountResponse, error) {
	return countAt(ctx, c, "", goal)
}

// Has reports whether a ground goal's tuple is present.
func (c *Client) Has(ctx context.Context, goal string) (bool, error) {
	resp, err := countAt(ctx, c, "", goal)
	if err != nil {
		return false, err
	}
	return resp.Has, nil
}

// Explain enumerates the derivations of a ground view tuple.
func (c *Client) Explain(ctx context.Context, goal string) (*ExplainResponse, error) {
	return explainAt(ctx, c, "", goal)
}

// Metrics fetches the server's metrics exposition (`name value` lines:
// the engine's counters plus the server_* serving-layer series).
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &apiError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		name, val, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(val, "%d", &n); err == nil {
			out[name] = n
		}
	}
	return out, sc.Err()
}

// Info fetches the served views' description.
func (c *Client) Info(ctx context.Context) (*Info, error) {
	var out Info
	if err := c.do(ctx, http.MethodGet, "/v1/info", nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Session is a snapshot-pinned repeatable-read handle: every read
// through it observes exactly Version, no matter how many updates
// commit on the server in between. Sessions expire server-side after a
// TTL of inactivity; Close releases one early.
type Session struct {
	c       *Client
	ID      string
	Version uint64
}

// NewSession pins the server's current version.
func (c *Client) NewSession(ctx context.Context) (*Session, error) {
	var out SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/session", nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: out.ID, Version: out.Version}, nil
}

// Close releases the session server-side.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/session/"+s.ID, nil, nil, "", nil)
}

// Query matches a goal at the pinned version.
func (s *Session) Query(ctx context.Context, goal string) (*QueryResponse, error) {
	return queryAt(ctx, s.c, s.ID, goal)
}

// Rows returns a relation's rows at the pinned version.
func (s *Session) Rows(ctx context.Context, pred string) (*RowsResponse, error) {
	return rowsAt(ctx, s.c, s.ID, pred)
}

// Count returns a ground goal's count at the pinned version.
func (s *Session) Count(ctx context.Context, goal string) (*CountResponse, error) {
	return countAt(ctx, s.c, s.ID, goal)
}

// Explain enumerates derivations at the pinned version.
func (s *Session) Explain(ctx context.Context, goal string) (*ExplainResponse, error) {
	return explainAt(ctx, s.c, s.ID, goal)
}

func sessionQuery(session string) url.Values {
	q := url.Values{}
	if session != "" {
		q.Set("session", session)
	}
	return q
}

func queryAt(ctx context.Context, c *Client, session, goal string) (*QueryResponse, error) {
	q := sessionQuery(session)
	q.Set("goal", goal)
	var out QueryResponse
	if err := c.do(ctx, http.MethodGet, "/v1/query", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func rowsAt(ctx context.Context, c *Client, session, pred string) (*RowsResponse, error) {
	q := sessionQuery(session)
	q.Set("pred", pred)
	var out RowsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/rows", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func countAt(ctx context.Context, c *Client, session, goal string) (*CountResponse, error) {
	q := sessionQuery(session)
	q.Set("goal", goal)
	var out CountResponse
	if err := c.do(ctx, http.MethodGet, "/v1/count", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func explainAt(ctx context.Context, c *Client, session, goal string) (*ExplainResponse, error) {
	q := sessionQuery(session)
	q.Set("goal", goal)
	var out ExplainResponse
	if err := c.do(ctx, http.MethodGet, "/v1/explain", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscription is a live change stream. Read Events until it closes,
// then consult Err: nil means a clean close (Close called or server
// shutdown), ErrEvicted means the server dropped this consumer for
// falling behind.
type Subscription struct {
	events chan Event
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

// ErrEvicted reports that the server evicted this subscriber because
// its events backed up past the per-client buffer: the stream has a
// gap, so re-read current state and resubscribe.
var ErrEvicted = fmt.Errorf("ivmd: subscriber evicted (consumer too slow)")

// Events yields the stream: first a hello event carrying the version
// the subscription started at, then one event per committed batch
// matching the predicate filter.
func (s *Subscription) Events() <-chan Event { return s.events }

// Err returns why the stream ended (nil for a clean close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Close terminates the subscription.
func (s *Subscription) Close() { s.cancel() }

// Subscribe opens a streaming change subscription for the given
// predicates (none = every predicate). buffer, when > 0, requests a
// smaller server-side buffer than the default (useful in tests; the
// server caps it at its own maximum). The stream ends when ctx is
// canceled, Close is called, the server shuts down, or the subscriber
// is evicted.
func (c *Client) Subscribe(ctx context.Context, preds []string, buffer int) (*Subscription, error) {
	q := url.Values{}
	for _, p := range preds {
		q.Add("pred", p)
	}
	if buffer > 0 {
		q.Set("buffer", fmt.Sprint(buffer))
	}
	ctx, cancel := context.WithCancel(ctx)
	u := c.base + "/v1/subscribe"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		var er ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &apiError{Status: resp.StatusCode, Message: msg}
	}
	sub := &Subscription{events: make(chan Event), cancel: cancel}
	go func() {
		defer close(sub.events)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				sub.setErr(fmt.Errorf("ivmd: decoding event: %w", err))
				return
			}
			if ev.Evicted {
				sub.setErr(ErrEvicted)
				return
			}
			select {
			case sub.events <- ev:
			case <-ctx.Done():
				return
			}
		}
		if err := sc.Err(); err != nil && ctx.Err() == nil {
			sub.setErr(err)
		}
	}()
	return sub, nil
}

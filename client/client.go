// Package client is the Go client for ivmd, the ivm serving daemon:
// applies, lock-free reads, snapshot-pinned repeatable-read sessions,
// and streaming change subscriptions over plain HTTP/JSON. It depends
// only on the standard library (not on the engine), so it embeds
// cheaply in consumer services.
//
// Applies are retried automatically under an idempotency key (see
// RetryPolicy and ApplyWithKey), so a lost ack never double-applies.
// Against a replicated cluster, ReadPool round-robins reads over
// followers with leader fallback, and NewClusterPool discovers the
// topology — leader, followers, fencing epoch — from any seed node's
// /v1/info, re-resolving across failovers (docs/REPLICATION.md).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to one ivmd server. Safe for concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	stats stats
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:7199"). The optional http.Client configures
// transport-level behavior; nil gets a transport with dial,
// TLS-handshake, and response-header timeouts (so a hung server or
// black-holed connection fails an attempt instead of blocking forever)
// but no overall request timeout — Subscribe streams stay open
// indefinitely, bounded only by their context; only their headers are
// subject to the response-header timeout. If you pass your own
// http.Client, give it no overall Timeout for the same reason.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport()}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc, retry: DefaultRetryPolicy}
}

// defaultTransport bounds every phase of a request except reading the
// body, which streaming subscriptions need unbounded.
func defaultTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		MaxIdleConnsPerHost:   16,
	}
}

// SetRetryPolicy replaces the apply retry policy (DefaultRetryPolicy
// until set). Call before issuing requests; it is not synchronized with
// in-flight calls.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// apiError is a non-2xx response decoded from the server.
type apiError struct {
	Status     int
	Message    string
	RetryAfter time.Duration // parsed Retry-After hint (0 = none)
	LeaderURL  string        // Leader-URL header of follower rejections
}

func (e *apiError) Error() string {
	return fmt.Sprintf("ivmd: %s (http %d)", e.Message, e.Status)
}

// errorFromResponse decodes a non-2xx response body into an apiError.
func errorFromResponse(status int, header http.Header, data []byte) *apiError {
	e := &apiError{Status: status, Message: strings.TrimSpace(string(data))}
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		e.Message = er.Error
	}
	if secs, err := strconv.Atoi(header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	e.LeaderURL = header.Get("Leader-URL")
	return e
}

// StatusOf returns the HTTP status an error carries (0 when err never
// reached a server response).
func StatusOf(err error) int {
	var apiErr *apiError
	if errors.As(err, &apiErr) {
		return apiErr.Status
	}
	return 0
}

// LeaderURLOf returns the Leader-URL a follower's rejection advertised,
// if err carried one.
func LeaderURLOf(err error) string {
	var apiErr *apiError
	if errors.As(err, &apiErr) {
		return apiErr.LeaderURL
	}
	return ""
}

func (c *Client) do(ctx context.Context, method, path string, query url.Values, body io.Reader, contentType string, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.roundTrip(req, out)
}

// roundTrip executes one prepared request and decodes the response.
func (c *Client) roundTrip(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return errorFromResponse(resp.StatusCode, resp.Header, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Apply submits a delta script (`+link(a,b). -link(b,c).`). On success
// the update is applied to every view — and, for store-bound servers,
// durably logged — and the result names the version in which its
// effects became visible.
//
// Apply is exactly-once under failure: it stamps the request with a
// generated Idempotency-Key and retries transport errors, timeouts, and
// 503s with exponential backoff (see RetryPolicy), so a retry of an
// apply whose ack was lost is answered from the server's dedup window
// instead of applying twice. Use ApplyWithKey to control the key across
// client restarts.
func (c *Client) Apply(ctx context.Context, script string) (*ApplyResult, error) {
	return c.ApplyWithKey(ctx, newIdempotencyKey(), script)
}

// Query matches a goal pattern (`hop(a,X)`) against the current
// published version.
func (c *Client) Query(ctx context.Context, goal string) (*QueryResponse, error) {
	return queryAt(ctx, c, "", goal, ReadOptions{})
}

// Rows returns the stored rows of a relation at the current version.
func (c *Client) Rows(ctx context.Context, pred string) (*RowsResponse, error) {
	return rowsAt(ctx, c, "", pred, ReadOptions{})
}

// Count returns the derivation count of a ground goal (`hop(a,c)`).
func (c *Client) Count(ctx context.Context, goal string) (*CountResponse, error) {
	return countAt(ctx, c, "", goal, ReadOptions{})
}

// Has reports whether a ground goal's tuple is present.
func (c *Client) Has(ctx context.Context, goal string) (bool, error) {
	resp, err := countAt(ctx, c, "", goal, ReadOptions{})
	if err != nil {
		return false, err
	}
	return resp.Has, nil
}

// Explain enumerates the derivations of a ground view tuple.
func (c *Client) Explain(ctx context.Context, goal string) (*ExplainResponse, error) {
	return explainAt(ctx, c, "", goal, ReadOptions{})
}

// Metrics fetches the server's metrics exposition (`name value` lines:
// the engine's counters plus the server_* serving-layer series).
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &apiError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		name, val, ok := strings.Cut(sc.Text(), " ")
		if !ok {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(val, "%d", &n); err == nil {
			out[name] = n
		}
	}
	return out, sc.Err()
}

// Info fetches the served views' description, including the node's
// cluster role, fencing epoch, and (on a follower) its leader's URL.
func (c *Client) Info(ctx context.Context) (*Info, error) {
	var out Info
	if err := c.do(ctx, http.MethodGet, "/v1/info", nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Promote asks a follower to take over as the cluster primary at the
// next fencing epoch (POST /v1/promote). The call is idempotent: a node
// that is already primary answers Promoted=false with its current
// epoch. Promote a follower only after checking it has caught up to the
// last acked write — see docs/OPERATIONS.md for the procedure.
func (c *Client) Promote(ctx context.Context) (*PromoteResult, error) {
	var out PromoteResult
	if err := c.do(ctx, http.MethodPost, "/v1/promote", nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BaseURL returns the server base URL this client targets.
func (c *Client) BaseURL() string { return c.base }

// Session is a snapshot-pinned repeatable-read handle: every read
// through it observes exactly Version, no matter how many updates
// commit on the server in between. Sessions expire server-side after a
// TTL of inactivity; Close releases one early.
type Session struct {
	c       *Client
	ID      string
	Version uint64
}

// NewSession pins the server's current version.
func (c *Client) NewSession(ctx context.Context) (*Session, error) {
	var out SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/session", nil, nil, "", &out); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: out.ID, Version: out.Version}, nil
}

// Close releases the session server-side.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/session/"+s.ID, nil, nil, "", nil)
}

// Query matches a goal at the pinned version.
func (s *Session) Query(ctx context.Context, goal string) (*QueryResponse, error) {
	return queryAt(ctx, s.c, s.ID, goal, ReadOptions{})
}

// Rows returns a relation's rows at the pinned version.
func (s *Session) Rows(ctx context.Context, pred string) (*RowsResponse, error) {
	return rowsAt(ctx, s.c, s.ID, pred, ReadOptions{})
}

// Count returns a ground goal's count at the pinned version.
func (s *Session) Count(ctx context.Context, goal string) (*CountResponse, error) {
	return countAt(ctx, s.c, s.ID, goal, ReadOptions{})
}

// Explain enumerates derivations at the pinned version.
func (s *Session) Explain(ctx context.Context, goal string) (*ExplainResponse, error) {
	return explainAt(ctx, s.c, s.ID, goal, ReadOptions{})
}

// ReadOptions tune one read request. The zero value reads whatever
// version the server currently publishes.
type ReadOptions struct {
	// MinVersion, when > 0, makes the read bounded-staleness: the server
	// waits (briefly) for its published version to reach MinVersion and
	// answers 412 instead of serving older data. Pass the version an
	// Apply ack carried to get read-your-writes across replication lag;
	// a 412 from a follower carries a Leader-URL header (LeaderURLOf) to
	// redirect to.
	MinVersion uint64
}

func readQuery(session string, ro ReadOptions) url.Values {
	q := url.Values{}
	if session != "" {
		q.Set("session", session)
	}
	if ro.MinVersion > 0 {
		q.Set("min_version", strconv.FormatUint(ro.MinVersion, 10))
	}
	return q
}

// QueryOpts is Query with per-read options.
func (c *Client) QueryOpts(ctx context.Context, goal string, ro ReadOptions) (*QueryResponse, error) {
	return queryAt(ctx, c, "", goal, ro)
}

// RowsOpts is Rows with per-read options.
func (c *Client) RowsOpts(ctx context.Context, pred string, ro ReadOptions) (*RowsResponse, error) {
	return rowsAt(ctx, c, "", pred, ro)
}

// CountOpts is Count with per-read options.
func (c *Client) CountOpts(ctx context.Context, goal string, ro ReadOptions) (*CountResponse, error) {
	return countAt(ctx, c, "", goal, ro)
}

// ExplainOpts is Explain with per-read options.
func (c *Client) ExplainOpts(ctx context.Context, goal string, ro ReadOptions) (*ExplainResponse, error) {
	return explainAt(ctx, c, "", goal, ro)
}

func queryAt(ctx context.Context, c *Client, session, goal string, ro ReadOptions) (*QueryResponse, error) {
	q := readQuery(session, ro)
	q.Set("goal", goal)
	var out QueryResponse
	if err := c.do(ctx, http.MethodGet, "/v1/query", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func rowsAt(ctx context.Context, c *Client, session, pred string, ro ReadOptions) (*RowsResponse, error) {
	q := readQuery(session, ro)
	q.Set("pred", pred)
	var out RowsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/rows", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func countAt(ctx context.Context, c *Client, session, goal string, ro ReadOptions) (*CountResponse, error) {
	q := readQuery(session, ro)
	q.Set("goal", goal)
	var out CountResponse
	if err := c.do(ctx, http.MethodGet, "/v1/count", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func explainAt(ctx context.Context, c *Client, session, goal string, ro ReadOptions) (*ExplainResponse, error) {
	q := readQuery(session, ro)
	q.Set("goal", goal)
	var out ExplainResponse
	if err := c.do(ctx, http.MethodGet, "/v1/explain", q, nil, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscription is a live change stream. Read Events until it closes,
// then consult Err: nil means a clean close (Close called or server
// shutdown), ErrResyncRequired means the stream has a gap the server
// could not bridge, ErrEvicted means an eviction the resume machinery
// could not recover from; anything else is the terminal transport or
// protocol failure.
//
// Disconnects and evictions are resumed automatically: the client
// reconnects with ?from=<last seen version> under its RetryPolicy, the
// server replays the missed events, and consumers observe one gapless
// stream with no duplicate events across the seam.
type Subscription struct {
	events chan Event
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

// ErrEvicted reports that the server evicted this subscriber because
// its events backed up past the per-client buffer and a gapless resume
// was not possible: the stream has a gap, so re-read current state and
// resubscribe.
var ErrEvicted = fmt.Errorf("ivmd: subscriber evicted (consumer too slow)")

// ErrResyncRequired reports that the server could not replay the events
// between this subscriber's resume point and now (they aged out of its
// replay ring): the stream has a gap, so re-read current state and
// resubscribe.
var ErrResyncRequired = fmt.Errorf("ivmd: subscription resume point aged out; re-read state and resubscribe")

// Events yields the stream: first a hello event carrying the version
// the subscription started at, then one event per committed batch
// matching the predicate filter.
func (s *Subscription) Events() <-chan Event { return s.events }

// Err returns why the stream ended (nil for a clean close).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

func (s *Subscription) setErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// Close terminates the subscription.
func (s *Subscription) Close() { s.cancel() }

// Subscribe opens a streaming change subscription for the given
// predicates (none = every predicate). buffer, when > 0, requests a
// smaller server-side buffer than the default (useful in tests; the
// server caps it at its own maximum). The stream ends when ctx is
// canceled, Close is called, the server closes the stream cleanly, the
// gap after an eviction or disconnect cannot be resumed, or reconnects
// exhaust the client's RetryPolicy.
func (c *Client) Subscribe(ctx context.Context, preds []string, buffer int) (*Subscription, error) {
	ctx, cancel := context.WithCancel(ctx)
	// The first connect is synchronous so callers see immediate failures
	// (bad parameters, unreachable server) as a plain error.
	resp, err := c.subscribeOnce(ctx, preds, buffer, 0, false)
	if err != nil {
		cancel()
		return nil, err
	}
	sub := &Subscription{events: make(chan Event), cancel: cancel}
	go sub.run(ctx, c, preds, buffer, resp)
	return sub, nil
}

// subscribeOnce opens one /v1/subscribe connection, resuming after from
// when resume is set.
func (c *Client) subscribeOnce(ctx context.Context, preds []string, buffer int, from uint64, resume bool) (*http.Response, error) {
	q := url.Values{}
	for _, p := range preds {
		q.Add("pred", p)
	}
	if buffer > 0 {
		q.Set("buffer", fmt.Sprint(buffer))
	}
	if resume {
		q.Set("from", fmt.Sprint(from))
	}
	u := c.base + "/v1/subscribe"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		header := resp.Header
		resp.Body.Close()
		return nil, errorFromResponse(resp.StatusCode, header, data)
	}
	return resp, nil
}

// streamEnd is why one subscribe connection stopped yielding events.
type streamEnd int

const (
	endClean   streamEnd = iota // server closed the stream (shutdown)
	endCtx                      // caller's context ended
	endFatal                    // protocol damage or resync; err is set
	endEvicted                  // server evicted us; resumable
	endNetwork                  // transport failure; resumable
)

// run is the subscription's delivery loop: consume a connection, and on
// a resumable end reconnect with ?from=<last seen version> so consumers
// observe one gapless, duplicate-free stream.
func (s *Subscription) run(ctx context.Context, c *Client, preds []string, buffer int, resp *http.Response) {
	defer close(s.events)
	p := c.retry.withDefaults()
	var lastSeen uint64
	resumed := false
	// evictedAt guards against an eviction loop: a second eviction with
	// no progress since the last one means resume cannot help.
	evictedAt, everEvicted := uint64(0), false
	for {
		end, err := s.consume(ctx, resp, &lastSeen, resumed)
		switch end {
		case endClean, endCtx:
			return
		case endFatal:
			s.setErr(err)
			return
		case endEvicted:
			if everEvicted && lastSeen == evictedAt {
				s.setErr(ErrEvicted)
				return
			}
			evictedAt, everEvicted = lastSeen, true
		case endNetwork:
			// resumable
		}
		var lastErr error = err
		next := (*http.Response)(nil)
		for attempt := 1; attempt < p.MaxAttempts; attempt++ {
			if err := sleepCtx(ctx, p.Backoff(attempt, retryAfterOf(lastErr))); err != nil {
				return
			}
			r, err := c.subscribeOnce(ctx, preds, buffer, lastSeen, true)
			if err == nil {
				next = r
				break
			}
			lastErr = err
			if !retryable(err) || ctx.Err() != nil {
				s.setErr(lastErr)
				return
			}
		}
		if next == nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("ivmd: subscription reconnect gave up after %d attempts", p.MaxAttempts)
			}
			s.setErr(lastErr)
			return
		}
		resp, resumed = next, true
	}
}

// consume reads one connection's stream, delivering fresh events and
// suppressing replay overlap (events at or below lastSeen) and the
// redundant hello of a resumed connection.
func (s *Subscription) consume(ctx context.Context, resp *http.Response, lastSeen *uint64, resumed bool) (streamEnd, error) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return endFatal, fmt.Errorf("ivmd: decoding event: %w", err)
		}
		switch {
		case ev.Resync:
			return endFatal, ErrResyncRequired
		case ev.Evicted:
			return endEvicted, nil
		case ev.Hello:
			if resumed {
				continue
			}
			// The consumer's baseline: everything at or below the hello
			// version is visible in its initial read, so that is also the
			// stream's first resume point.
			if ev.Version > *lastSeen {
				*lastSeen = ev.Version
			}
		default:
			if ev.Version <= *lastSeen {
				continue // replay overlap after a resume
			}
		}
		select {
		case s.events <- ev:
			if !ev.Hello && ev.Version > *lastSeen {
				*lastSeen = ev.Version
			}
		case <-ctx.Done():
			return endCtx, nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return endCtx, nil
		}
		return endNetwork, err
	}
	if ctx.Err() != nil {
		return endCtx, nil
	}
	return endClean, nil
}

package client

// ReadPool fans reads out across a leader and its replication
// followers. Reads round-robin over the followers (falling back to the
// leader when a follower is unreachable, still catching up past a
// MinVersion bound, or redirects); applies always go to the leader.
// Combined with ReadOptions.MinVersion carrying the version an apply
// ack returned, the pool gives read-your-writes on top of asynchronous
// replication while follower capacity serves the read volume.

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
)

// ReadPool is a leader plus N follower clients. Safe for concurrent
// use.
type ReadPool struct {
	leader   *Client
	replicas []*Client
	next     atomic.Uint64

	fallbacks atomic.Uint64
}

// NewReadPool builds a pool over the leader's URL and any number of
// follower URLs. hc configures the shared transport exactly as in New
// (nil for defaults). With no followers every read goes to the leader.
func NewReadPool(leaderURL string, replicaURLs []string, hc *http.Client) *ReadPool {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport()}
	}
	p := &ReadPool{leader: New(leaderURL, hc)}
	for _, u := range replicaURLs {
		p.replicas = append(p.replicas, New(u, hc))
	}
	return p
}

// Leader returns the leader's client (the target of applies).
func (p *ReadPool) Leader() *Client { return p.leader }

// Fallbacks reports how many reads a follower could not serve and the
// leader answered instead.
func (p *ReadPool) Fallbacks() uint64 { return p.fallbacks.Load() }

// Apply submits a delta script to the leader (exactly-once under
// retries, as in Client.Apply).
func (p *ReadPool) Apply(ctx context.Context, script string) (*ApplyResult, error) {
	return p.leader.Apply(ctx, script)
}

// pick selects the next read target round-robin.
func (p *ReadPool) pick() *Client {
	if len(p.replicas) == 0 {
		return p.leader
	}
	return p.replicas[p.next.Add(1)%uint64(len(p.replicas))]
}

// fallbackToLeader decides whether a follower's failure should be
// retried on the leader: transport errors (follower down), 503s
// (follower shutting down or still bootstrapping), and 412s (the
// follower timed out waiting for MinVersion — the leader has it by
// definition, since the ack that named the version came from it).
// Context cancellations and data errors (bad goal, unknown predicate)
// would fail identically everywhere, so they surface as-is.
func fallbackToLeader(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	switch StatusOf(err) {
	case 0, http.StatusServiceUnavailable, http.StatusPreconditionFailed:
		return true
	}
	return false
}

// Query reads from a follower, falling back to the leader.
func (p *ReadPool) Query(ctx context.Context, goal string, ro ReadOptions) (*QueryResponse, error) {
	c := p.pick()
	out, err := c.QueryOpts(ctx, goal, ro)
	if err != nil && c != p.leader && fallbackToLeader(err) && ctx.Err() == nil {
		p.fallbacks.Add(1)
		return p.leader.QueryOpts(ctx, goal, ro)
	}
	return out, err
}

// Rows reads from a follower, falling back to the leader.
func (p *ReadPool) Rows(ctx context.Context, pred string, ro ReadOptions) (*RowsResponse, error) {
	c := p.pick()
	out, err := c.RowsOpts(ctx, pred, ro)
	if err != nil && c != p.leader && fallbackToLeader(err) && ctx.Err() == nil {
		p.fallbacks.Add(1)
		return p.leader.RowsOpts(ctx, pred, ro)
	}
	return out, err
}

// Count reads from a follower, falling back to the leader.
func (p *ReadPool) Count(ctx context.Context, goal string, ro ReadOptions) (*CountResponse, error) {
	c := p.pick()
	out, err := c.CountOpts(ctx, goal, ro)
	if err != nil && c != p.leader && fallbackToLeader(err) && ctx.Err() == nil {
		p.fallbacks.Add(1)
		return p.leader.CountOpts(ctx, goal, ro)
	}
	return out, err
}

// Explain reads from a follower, falling back to the leader.
func (p *ReadPool) Explain(ctx context.Context, goal string, ro ReadOptions) (*ExplainResponse, error) {
	c := p.pick()
	out, err := c.ExplainOpts(ctx, goal, ro)
	if err != nil && c != p.leader && fallbackToLeader(err) && ctx.Err() == nil {
		p.fallbacks.Add(1)
		return p.leader.ExplainOpts(ctx, goal, ro)
	}
	return out, err
}

package client

// ReadPool fans reads out across a leader and its replication
// followers. Reads round-robin over the followers (falling back to the
// leader when a follower is unreachable, still catching up past a
// MinVersion bound, or redirects); applies always go to the leader.
// Combined with ReadOptions.MinVersion carrying the version an apply
// ack returned, the pool gives read-your-writes on top of asynchronous
// replication while follower capacity serves the read volume.
//
// The pool tracks the leader rather than pinning it: NewClusterPool
// discovers the primary from a seed list via /v1/info, and any apply
// rejection that names a Leader-URL (or a dead leader, when seeds are
// known) re-resolves it — after a failover the pool follows the
// promoted follower without reconstruction.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// ReadPool is a leader plus N follower clients. Safe for concurrent
// use.
type ReadPool struct {
	leader   atomic.Pointer[Client]
	replicas []*Client
	hc       *http.Client
	seeds    []string
	next     atomic.Uint64

	fallbacks atomic.Uint64
}

// NewReadPool builds a pool over the leader's URL and any number of
// follower URLs. hc configures the shared transport exactly as in New
// (nil for defaults). With no followers every read goes to the leader.
func NewReadPool(leaderURL string, replicaURLs []string, hc *http.Client) *ReadPool {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport()}
	}
	p := &ReadPool{hc: hc}
	p.leader.Store(New(leaderURL, hc))
	for _, u := range replicaURLs {
		p.replicas = append(p.replicas, New(u, hc))
	}
	return p
}

// NewClusterPool builds a pool by discovering the cluster from seeds: a
// list of member base URLs, in no particular order and not necessarily
// complete. Each seed's /v1/info is probed; the primary with the
// highest fencing epoch becomes the leader (hopping once through a
// follower's advertised leader_url if no seed is the primary itself)
// and every reachable follower becomes a read target. The pool keeps
// the seed list, so a later failover re-resolves the new leader from
// it. It fails only when no primary is reachable at all.
func NewClusterPool(ctx context.Context, seeds []string, hc *http.Client) (*ReadPool, error) {
	if hc == nil {
		hc = &http.Client{Transport: defaultTransport()}
	}
	leaderURL, followers, err := probeCluster(ctx, seeds, hc)
	if err != nil {
		return nil, err
	}
	p := &ReadPool{hc: hc, seeds: seeds}
	p.leader.Store(New(leaderURL, hc))
	for _, u := range followers {
		p.replicas = append(p.replicas, New(u, hc))
	}
	return p, nil
}

// probeCluster asks each candidate for /v1/info and returns the
// highest-epoch primary plus the reachable follower URLs. Followers'
// advertised leader_url values are probed too (one hop), so a seed
// list of followers still finds their primary.
func probeCluster(ctx context.Context, seeds []string, hc *http.Client) (string, []string, error) {
	cands := append([]string(nil), seeds...)
	seen := make(map[string]bool, len(cands)+1)
	var leaderURL string
	var leaderEpoch uint64
	var followers []string
	var lastErr error
	for i := 0; i < len(cands); i++ {
		u := strings.TrimRight(cands[i], "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		info, err := New(u, hc).Info(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case info.LeaderURL == "":
			// A primary (or a pre-cluster server that reports no role).
			if info.Epoch >= leaderEpoch {
				leaderURL, leaderEpoch = u, info.Epoch
			}
		default:
			followers = append(followers, u)
			cands = append(cands, info.LeaderURL)
		}
	}
	if leaderURL == "" {
		if lastErr != nil {
			return "", nil, fmt.Errorf("client: no primary reachable from seeds: %w", lastErr)
		}
		return "", nil, errors.New("client: no primary reachable from seeds")
	}
	// The leader may also appear in the follower list when a stale
	// follower still advertised it as its own peer; drop it.
	kept := followers[:0]
	for _, u := range followers {
		if u != leaderURL {
			kept = append(kept, u)
		}
	}
	return leaderURL, kept, nil
}

// Leader returns the leader's client as the pool currently knows it
// (the target of applies; moves after a failover re-resolution).
func (p *ReadPool) Leader() *Client { return p.leader.Load() }

// Fallbacks reports how many reads a follower could not serve and the
// leader answered instead.
func (p *ReadPool) Fallbacks() uint64 { return p.fallbacks.Load() }

// setLeader retargets the pool at a new leader URL (no-op when it
// already points there).
func (p *ReadPool) setLeader(u string) {
	u = strings.TrimRight(u, "/")
	if u == "" || u == p.Leader().BaseURL() {
		return
	}
	p.leader.Store(New(u, p.hc))
}

// Apply submits a delta script to the leader (exactly-once under
// retries, as in Client.Apply). When the target answers with a
// Leader-URL — it is (or became) a follower, or it was deposed — the
// pool re-resolves the leader and retries there once; when the leader
// is unreachable and the pool was built from seeds, it re-discovers
// the cluster first. The retry reuses Client.Apply's idempotency
// machinery, so the failover retry cannot double-apply.
func (p *ReadPool) Apply(ctx context.Context, script string) (*ApplyResult, error) {
	res, err := p.Leader().Apply(ctx, script)
	if err == nil || ctx.Err() != nil {
		return res, err
	}
	if lu := LeaderURLOf(err); lu != "" {
		p.setLeader(lu)
		return p.Leader().Apply(ctx, script)
	}
	if StatusOf(err) == 0 && len(p.seeds) > 0 {
		if leaderURL, _, derr := probeCluster(ctx, p.seeds, p.hc); derr == nil {
			p.setLeader(leaderURL)
			return p.Leader().Apply(ctx, script)
		}
	}
	return res, err
}

// pick selects the next read target round-robin.
func (p *ReadPool) pick() *Client {
	if len(p.replicas) == 0 {
		return p.Leader()
	}
	return p.replicas[p.next.Add(1)%uint64(len(p.replicas))]
}

// fallbackToLeader decides whether a follower's failure should be
// retried on the leader: transport errors (follower down), 503s
// (follower shutting down or still bootstrapping), and 412s (the
// follower timed out waiting for MinVersion — the leader has it by
// definition, since the ack that named the version came from it).
// Context cancellations and data errors (bad goal, unknown predicate)
// would fail identically everywhere, so they surface as-is.
func fallbackToLeader(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	switch StatusOf(err) {
	case 0, http.StatusServiceUnavailable, http.StatusPreconditionFailed:
		return true
	}
	return false
}

// readFallback runs one read through the pool's routing: pick a
// follower, on a retryable failure fall back to the leader (counted),
// and when the leader itself turns out dead or deposed, follow the
// Leader-URL hint — either node's — to the promoted primary and retry
// there. The hint chase retargets the whole pool, so later applies go
// to the right node too.
func readFallback[T any](ctx context.Context, p *ReadPool, do func(c *Client) (T, error)) (T, error) {
	c, lead := p.pick(), p.Leader()
	out, err := do(c)
	if err == nil || c == lead || !fallbackToLeader(err) || ctx.Err() != nil {
		return out, err
	}
	p.fallbacks.Add(1)
	out2, err2 := do(lead)
	if err2 != nil && ctx.Err() == nil {
		// The leader answered with a redirect (it was deposed) or is
		// unreachable while the follower named its replacement.
		hint := LeaderURLOf(err2)
		if hint == "" && StatusOf(err2) == 0 {
			hint = LeaderURLOf(err)
		}
		if hint != "" && strings.TrimRight(hint, "/") != lead.BaseURL() {
			p.setLeader(hint)
			return do(p.Leader())
		}
	}
	return out2, err2
}

// Query reads from a follower, falling back to the leader.
func (p *ReadPool) Query(ctx context.Context, goal string, ro ReadOptions) (*QueryResponse, error) {
	return readFallback(ctx, p, func(c *Client) (*QueryResponse, error) {
		return c.QueryOpts(ctx, goal, ro)
	})
}

// Rows reads from a follower, falling back to the leader.
func (p *ReadPool) Rows(ctx context.Context, pred string, ro ReadOptions) (*RowsResponse, error) {
	return readFallback(ctx, p, func(c *Client) (*RowsResponse, error) {
		return c.RowsOpts(ctx, pred, ro)
	})
}

// Count reads from a follower, falling back to the leader.
func (p *ReadPool) Count(ctx context.Context, goal string, ro ReadOptions) (*CountResponse, error) {
	return readFallback(ctx, p, func(c *Client) (*CountResponse, error) {
		return c.CountOpts(ctx, goal, ro)
	})
}

// Explain reads from a follower, falling back to the leader.
func (p *ReadPool) Explain(ctx context.Context, goal string, ro ReadOptions) (*ExplainResponse, error) {
	return readFallback(ctx, p, func(c *Client) (*ExplainResponse, error) {
		return c.ExplainOpts(ctx, goal, ro)
	})
}

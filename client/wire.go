package client

// Wire types of the ivmd HTTP/JSON protocol (internal/server renders
// them, this package decodes them — both sides of the wire share one
// definition). Tuples travel as the engine's surface syntax, one string
// per value (`"a"`, `"42"`, `"5.0"`, `"\"not an ident\""`), exactly
// what Value.String renders and the Datalog parser reparses — so a
// client can echo values back into delta scripts and goals verbatim.

// Row is a stored or delta row: the tuple's rendered values plus its
// signed derivation count.
type Row struct {
	Tuple []string `json:"tuple"`
	Count int64    `json:"count"`
}

// Delta is one predicate's changes within a committed batch (deleted
// counts are reported positive, mirroring ivm.ChangeSet).
type Delta struct {
	Pred     string `json:"pred"`
	Inserted []Row  `json:"inserted,omitempty"`
	Deleted  []Row  `json:"deleted,omitempty"`
}

// Event is one line of the subscription stream: a committed maintenance
// batch, stamped with the version it published. The first event of a
// stream is a hello carrying the current version and no deltas; a final
// event with Evicted set reports that the server dropped this consumer
// for falling behind its buffer. A final event with Resync set answers
// a ?from= resume whose events have aged out of the server's replay
// ring: the stream has an unbridgeable gap, so re-read current state
// and subscribe afresh.
type Event struct {
	Version uint64  `json:"version"`
	Deltas  []Delta `json:"deltas,omitempty"`
	Hello   bool    `json:"hello,omitempty"`
	Evicted bool    `json:"evicted,omitempty"`
	Resync  bool    `json:"resync,omitempty"`
}

// ApplyResult acknowledges a durably applied update: the version in
// which its effects became visible plus the per-view changes. For
// store-bound servers the WAL record is fsynced before this result is
// sent — an acked apply survives any crash or shutdown. Deduped reports
// that the request's Idempotency-Key had already committed and this is
// the original apply's result, not a fresh application.
type ApplyResult struct {
	Version uint64  `json:"version"`
	Deltas  []Delta `json:"deltas,omitempty"`
	Deduped bool    `json:"deduped,omitempty"`
}

// QueryResult is one match of a query goal.
type QueryResult struct {
	Tuple    []string          `json:"tuple"`
	Count    int64             `json:"count"`
	Bindings map[string]string `json:"bindings,omitempty"`
}

// QueryResponse is the result of /v1/query: the matches plus the
// version they were evaluated at.
type QueryResponse struct {
	Version uint64        `json:"version"`
	Results []QueryResult `json:"results"`
}

// RowsResponse is the result of /v1/rows.
type RowsResponse struct {
	Version uint64 `json:"version"`
	Pred    string `json:"pred"`
	Rows    []Row  `json:"rows"`
}

// CountResponse is the result of /v1/count and /v1/has.
type CountResponse struct {
	Version uint64 `json:"version"`
	Count   int64  `json:"count"`
	Has     bool   `json:"has"`
}

// Subgoal is one instantiated body literal of a derivation.
type Subgoal struct {
	Pred      string   `json:"pred"`
	Tuple     []string `json:"tuple"`
	Negated   bool     `json:"negated,omitempty"`
	Aggregate bool     `json:"aggregate,omitempty"`
	Count     int64    `json:"count"`
}

// Derivation is one way a view tuple is derived.
type Derivation struct {
	Rule      string    `json:"rule"`
	RuleIndex int       `json:"rule_index"`
	Subgoals  []Subgoal `json:"subgoals"`
}

// ExplainResponse is the result of /v1/explain.
type ExplainResponse struct {
	Version     uint64       `json:"version"`
	Derivations []Derivation `json:"derivations"`
}

// SessionInfo describes a snapshot-pinned repeatable-read session: every
// read issued with this session id observes exactly Version, no matter
// how many updates commit afterwards. Sessions expire after the
// server's TTL of inactivity (each read refreshes the clock).
type SessionInfo struct {
	ID          string `json:"id"`
	Version     uint64 `json:"version"`
	ExpiresUnix int64  `json:"expires_unix"`
}

// Info describes the served views and the node's place in the cluster:
// Role is "primary" or "follower", Epoch is the fencing epoch the node
// operates under (increments on every promotion), and LeaderURL names
// the primary as the node knows it (empty on a primary). Clients use
// these fields for leader discovery — see ReadPool's cluster
// constructor.
type Info struct {
	Strategy  string   `json:"strategy"`
	Semantics string   `json:"semantics"`
	Rules     int      `json:"rules"`
	Version   uint64   `json:"version"`
	StoreDir  string   `json:"store_dir,omitempty"`
	Preds     []string `json:"preds"`
	Role      string   `json:"role,omitempty"`
	Epoch     uint64   `json:"epoch,omitempty"`
	LeaderURL string   `json:"leader_url,omitempty"`
}

// PromoteResult acknowledges POST /v1/promote. Promoted is false when
// the node was already a primary (the call is idempotent); Epoch is the
// fencing epoch the node now leads (or already led) at.
type PromoteResult struct {
	Role     string `json:"role"`
	Epoch    uint64 `json:"epoch"`
	Promoted bool   `json:"promoted"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

package client

import (
	"net/http"
	"testing"
	"time"
)

func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := DefaultRetryPolicy
	for retry := 1; retry <= 10; retry++ {
		for trial := 0; trial < 50; trial++ {
			d := p.Backoff(retry, 0)
			if d <= 0 || d > p.MaxDelay {
				t.Fatalf("backoff(%d) = %v, want (0, %v]", retry, d, p.MaxDelay)
			}
		}
	}
	// A Retry-After hint raises the wait but never past the cap.
	if d := p.Backoff(1, time.Second); d < time.Second {
		t.Fatalf("backoff with 1s hint = %v, want >= 1s", d)
	}
	if d := p.Backoff(1, time.Minute); d != p.MaxDelay {
		t.Fatalf("backoff with 1m hint = %v, want capped at %v", d, p.MaxDelay)
	}
}

func TestRetryPolicyWithDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p != DefaultRetryPolicy {
		t.Fatalf("zero policy = %+v, want defaults %+v", p, DefaultRetryPolicy)
	}
	p = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}.withDefaults()
	if p.MaxAttempts != 1 || p.BaseDelay != time.Millisecond {
		t.Fatalf("explicit policy overridden: %+v", p)
	}
}

func TestErrorFromResponseRetryAfter(t *testing.T) {
	h := http.Header{}
	h.Set("Retry-After", "2")
	e := errorFromResponse(503, h, []byte(`{"error":"shutting down"}`))
	if e.Message != "shutting down" || e.RetryAfter != 2*time.Second {
		t.Fatalf("apiError = %+v", e)
	}
	if e2 := errorFromResponse(422, http.Header{}, []byte("nope")); e2.RetryAfter != 0 || e2.Message != "nope" {
		t.Fatalf("apiError = %+v", e2)
	}
}

func TestRetryableClassification(t *testing.T) {
	if !retryable(&apiError{Status: 503}) {
		t.Fatal("503 must be retryable")
	}
	for _, status := range []int{400, 404, 413, 422, 500} {
		if retryable(&apiError{Status: status}) {
			t.Fatalf("%d must not be retryable", status)
		}
	}
}

func TestNewIdempotencyKeyUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := newIdempotencyKey()
		if len(k) != 32 || seen[k] {
			t.Fatalf("bad or repeated key %q", k)
		}
		seen[k] = true
	}
}

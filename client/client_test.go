package client_test

// The client package is stdlib-only, so its tests live in an external
// test package that boots a real server (ivm/internal/server) and
// exercises the full client surface over actual HTTP.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/server"
)

func startServer(t *testing.T, opts server.Options) *client.Client {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	opts.OwnViews = true
	srv := server.New(v, opts)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return client.New(srv.URL(), nil)
}

func TestClientRoundtrip(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rules == 0 || info.Strategy == "" {
		t.Fatalf("thin info: %+v", info)
	}

	res, err := c.Apply(ctx, "+link(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version == 0 {
		t.Fatal("apply did not report a version")
	}

	qr, err := c.Query(ctx, "hop(b,X)")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 1 || qr.Results[0].Bindings["X"] != "d" {
		t.Fatalf("hop(b,X) = %+v, want X=d", qr.Results)
	}

	rows, err := c.Rows(ctx, "hop")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("hop has %d rows, want 2", len(rows.Rows))
	}

	cnt, err := c.Count(ctx, "hop(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 1 || !cnt.Has {
		t.Fatalf("count hop(a,c) = %+v", cnt)
	}
	for goal, want := range map[string]bool{"hop(a,c)": true, "hop(c,a)": false} {
		has, err := c.Has(ctx, goal)
		if err != nil {
			t.Fatal(err)
		}
		if has != want {
			t.Fatalf("Has(%s) = %v, want %v", goal, has, want)
		}
	}

	ex, err := c.Explain(ctx, "hop(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Derivations) == 0 {
		t.Fatal("no derivations for hop(a,c)")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server_requests_total"] == 0 {
		t.Fatalf("metrics missing serving-layer series: %v", m)
	}
}

func TestClientErrors(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	if _, err := c.Apply(ctx, "+nonsense("); err == nil {
		t.Fatal("malformed script must fail")
	} else if !strings.Contains(err.Error(), "422") {
		t.Fatalf("apply rejection should carry the http status: %v", err)
	}
	if _, err := c.Count(ctx, "hop(a,X)"); err == nil {
		t.Fatal("non-ground count goal must fail")
	}
	if _, err := c.Query(ctx, ""); err == nil {
		t.Fatal("empty goal must fail")
	}
}

func TestClientSession(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Rows(ctx, "hop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(ctx, "+link(c,d)."); err != nil {
		t.Fatal(err)
	}
	// The live view moved; the pinned session must not.
	after, err := sess.Rows(ctx, "hop")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) || after.Version != sess.Version {
		t.Fatalf("session read moved: %d rows at v%d, pinned %d rows at v%d",
			len(after.Rows), after.Version, len(before.Rows), sess.Version)
	}
	if cnt, err := sess.Count(ctx, "hop(b,d)"); err != nil || cnt.Has {
		t.Fatalf("pinned session sees post-pin tuple (count=%+v err=%v)", cnt, err)
	}
	if qr, err := sess.Query(ctx, "hop(b,X)"); err != nil || len(qr.Results) != 0 {
		t.Fatalf("pinned session query sees post-pin tuple: %+v, %v", qr, err)
	}
	if _, err := sess.Explain(ctx, "hop(a,c)"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err == nil {
		t.Fatal("double close must fail")
	}
}

func TestClientSubscribe(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx, []string{"hop"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	hello, ok := <-sub.Events()
	if !ok || !hello.Hello {
		t.Fatalf("first event = %+v, want hello", hello)
	}

	res, err := c.Apply(ctx, "+link(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		if ev.Version != res.Version {
			t.Fatalf("event version %d, apply acked %d", ev.Version, res.Version)
		}
		if len(ev.Deltas) != 1 || ev.Deltas[0].Pred != "hop" {
			t.Fatalf("deltas = %+v, want one hop delta", ev.Deltas)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event within 5s of an acked apply")
	}

	sub.Close()
	for range sub.Events() {
	}
	if err := sub.Err(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("closed subscription err = %v", err)
	}

	if _, err := c.Subscribe(ctx, nil, -1); err != nil {
		t.Fatalf("default buffer subscribe: %v", err)
	}
}

// TestClientSubscribeEviction checks the client surfaces a server-sent
// eviction as ErrEvicted. (Provoking a real eviction over HTTP needs
// megabytes of TCP backpressure; the server-side half of the contract
// is covered by the hub and server tests.)
func TestClientSubscribeEviction(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/subscribe" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, `{"hello":true,"version":7}`)
		fmt.Fprintln(w, `{"version":8,"deltas":[{"pred":"hop","inserted":[{"tuple":["a","b"],"count":1}]}]}`)
		fmt.Fprintln(w, `{"evicted":true}`)
	}))
	defer ts.Close()

	sub, err := client.New(ts.URL, nil).Subscribe(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []client.Event
	for ev := range sub.Events() {
		got = append(got, ev)
	}
	if !errors.Is(sub.Err(), client.ErrEvicted) {
		t.Fatalf("stream ended with %v, want ErrEvicted", sub.Err())
	}
	if len(got) != 2 || !got[0].Hello || got[1].Version != 8 {
		t.Fatalf("events before eviction: %+v", got)
	}
}

// TestClientSubscribeBadStream: a malformed event line must end the
// stream with a decode error, not hang or drop silently.
func TestClientSubscribeBadStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"hello":true,"version":1}`)
		fmt.Fprintln(w, `not json`)
	}))
	defer ts.Close()

	sub, err := client.New(ts.URL, nil).Subscribe(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for range sub.Events() {
	}
	if sub.Err() == nil {
		t.Fatal("malformed stream line must surface an error")
	}
}

package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakeNode is a minimal ivmd read surface: every read endpoint answers
// with a fixed version (or a canned failure), and applies are counted.
type fakeNode struct {
	version uint64
	fail    atomic.Int32 // status to fail reads with; 0 = healthy
	leader  string
	reads   atomic.Int64
	applies atomic.Int64
}

func (f *fakeNode) server(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	read := func(w http.ResponseWriter, r *http.Request) {
		f.reads.Add(1)
		if st := int(f.fail.Load()); st != 0 {
			if f.leader != "" {
				w.Header().Set("Leader-URL", f.leader)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			json.NewEncoder(w).Encode(map[string]string{"error": "canned failure"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"version": f.version})
	}
	mux.HandleFunc("GET /v1/query", read)
	mux.HandleFunc("GET /v1/rows", read)
	mux.HandleFunc("GET /v1/count", read)
	mux.HandleFunc("GET /v1/explain", read)
	mux.HandleFunc("POST /v1/apply", func(w http.ResponseWriter, r *http.Request) {
		f.applies.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"version": f.version})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// Reads round-robin over the replicas; applies always hit the leader.
func TestReadPoolRoundRobinAndApply(t *testing.T) {
	leader := &fakeNode{version: 9}
	r1 := &fakeNode{version: 9}
	r2 := &fakeNode{version: 9}
	lts, t1, t2 := leader.server(t), r1.server(t), r2.server(t)

	p := NewReadPool(lts.URL, []string{t1.URL, t2.URL}, nil)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := p.Rows(ctx, "link", ReadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if r1.reads.Load() != 3 || r2.reads.Load() != 3 {
		t.Fatalf("replica reads %d/%d, want 3/3", r1.reads.Load(), r2.reads.Load())
	}
	if leader.reads.Load() != 0 {
		t.Fatalf("leader served %d reads with healthy replicas", leader.reads.Load())
	}

	if _, err := p.Apply(ctx, "+link(a,b)."); err != nil {
		t.Fatal(err)
	}
	if leader.applies.Load() != 1 || r1.applies.Load() != 0 || r2.applies.Load() != 0 {
		t.Fatal("apply did not route to the leader alone")
	}
	if p.Leader() == nil || p.Fallbacks() != 0 {
		t.Fatalf("unexpected pool state: fallbacks=%d", p.Fallbacks())
	}
}

// Retryable replica failures (503, 412, transport) fall back to the
// leader and are counted; data errors surface as-is.
func TestReadPoolFallback(t *testing.T) {
	leader := &fakeNode{version: 4}
	replica := &fakeNode{version: 4, leader: "http://leader.example"}
	lts, rts := leader.server(t), replica.server(t)
	p := NewReadPool(lts.URL, []string{rts.URL}, nil)
	ctx := context.Background()

	for i, st := range []int{http.StatusServiceUnavailable, http.StatusPreconditionFailed} {
		replica.fail.Store(int32(st))
		if _, err := p.Query(ctx, "hop(X,Y)", ReadOptions{}); err != nil {
			t.Fatalf("status %d did not fall back: %v", st, err)
		}
		if got := p.Fallbacks(); got != uint64(i+1) {
			t.Fatalf("Fallbacks() = %d after %d failures", got, i+1)
		}
	}
	if leader.reads.Load() != 2 {
		t.Fatalf("leader served %d fallback reads, want 2", leader.reads.Load())
	}

	// A 400 is the caller's bug: same result everywhere, no fallback.
	replica.fail.Store(http.StatusBadRequest)
	if _, err := p.Count(ctx, "hop(a,b)", ReadOptions{}); err == nil {
		t.Fatal("bad request did not surface")
	} else if StatusOf(err) != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", StatusOf(err))
	}
	if got := p.Fallbacks(); got != 2 {
		t.Fatalf("Fallbacks() = %d, want 2 (no fallback on data errors)", got)
	}

	// Transport errors (dead replica) fall back too.
	dead := NewReadPool(lts.URL, []string{"http://127.0.0.1:1"}, nil)
	if _, err := dead.Explain(ctx, "hop(a,b)", ReadOptions{}); err != nil {
		t.Fatalf("dead replica did not fall back: %v", err)
	}
	if dead.Fallbacks() != 1 {
		t.Fatalf("dead.Fallbacks() = %d, want 1", dead.Fallbacks())
	}
}

// With no replicas, every read goes to the leader directly.
func TestReadPoolLeaderOnly(t *testing.T) {
	leader := &fakeNode{version: 2}
	lts := leader.server(t)
	p := NewReadPool(lts.URL, nil, nil)
	if _, err := p.Rows(context.Background(), "link", ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if leader.reads.Load() != 1 {
		t.Fatalf("leader reads = %d, want 1", leader.reads.Load())
	}
}

package client_test

// Godoc examples: runnable documentation for the retry policy, the
// idempotency-key protocol, and the read pool's fallback ladder. Each
// example fakes the ivmd side with httptest so the output is
// deterministic.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"ivm/client"
)

// ExampleRetryPolicy: a transient 503 costs one retry, not an error.
// Every retry re-sends the same idempotency key, so an apply that
// actually committed before the connection died dedups server-side
// instead of applying twice.
func ExampleRetryPolicy() {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"version":1}`)
	}))
	defer srv.Close()

	c := client.New(srv.URL, nil)
	c.SetRetryPolicy(client.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	})
	ack, err := c.Apply(context.Background(), "+link(a,b).")
	if err != nil {
		panic(err)
	}
	st := c.Stats()
	fmt.Println(ack.Version, st.Applies, st.Retries)
	// Output: 1 1 1
}

// ExampleClient_ApplyWithKey: a caller-chosen stable key (a message
// id, a job id) makes an apply safe to re-send across client
// restarts — the duplicate is acknowledged with the original version
// and deduped set.
func ExampleClient_ApplyWithKey() {
	var (
		mu      sync.Mutex
		seen    = map[string]uint64{}
		version uint64
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		key := r.Header.Get("Idempotency-Key")
		if v, ok := seen[key]; ok {
			fmt.Fprintf(w, `{"version":%d,"deduped":true}`, v)
			return
		}
		version++
		seen[key] = version
		fmt.Fprintf(w, `{"version":%d}`, version)
	}))
	defer srv.Close()

	c := client.New(srv.URL, nil)
	ack, err := c.ApplyWithKey(context.Background(), "msg-42", "+link(a,b).")
	if err != nil {
		panic(err)
	}
	fmt.Println(ack.Version, ack.Deduped)

	ack, err = c.ApplyWithKey(context.Background(), "msg-42", "+link(a,b).") // retry
	if err != nil {
		panic(err)
	}
	fmt.Println(ack.Version, ack.Deduped)
	// Output:
	// 1 false
	// 1 true
}

// ExampleNewReadPool: reads round-robin over the followers; a
// follower that is down or behind (transport error, 503, 412) falls
// back to the leader, counted in Fallbacks. Writes always go to the
// leader.
func ExampleNewReadPool() {
	var behind atomic.Bool
	count := func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"version":9,"count":2}`)
	}
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if behind.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		count(w, r)
	}))
	defer follower.Close()
	leader := httptest.NewServer(http.HandlerFunc(count))
	defer leader.Close()

	pool := client.NewReadPool(leader.URL, []string{follower.URL}, nil)
	res, err := pool.Count(context.Background(), "hop(a,X)", client.ReadOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", res.Count, "fallbacks:", pool.Fallbacks())

	behind.Store(true) // follower starts bouncing; the leader covers
	res, err = pool.Count(context.Background(), "hop(a,X)", client.ReadOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", res.Count, "fallbacks:", pool.Fallbacks())
	// Output:
	// count: 2 fallbacks: 0
	// count: 2 fallbacks: 1
}

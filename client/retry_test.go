package client_test

// Apply retry behavior over real HTTP: flaky-server simulations with
// httptest plus end-to-end dedup against a live ivmd server.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ivm/client"
	"ivm/internal/server"
)

var quickRetry = client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func TestApplyRetries503UnderOneKey(t *testing.T) {
	var attempts atomic.Int64
	keys := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get("Idempotency-Key")
		if attempts.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"warming up"}`))
			return
		}
		json.NewEncoder(w).Encode(client.ApplyResult{Version: 7})
	}))
	defer ts.Close()

	c := client.New(ts.URL, nil)
	c.SetRetryPolicy(quickRetry)
	res, err := c.Apply(context.Background(), "+link(a,b).")
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 7 {
		t.Fatalf("version = %d, want 7", res.Version)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s then success)", got)
	}
	st := c.Stats()
	if st.Applies != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want Applies=1 Retries=2", st)
	}
	// Every attempt must re-send the same idempotency key — that is
	// what makes the retry safe.
	first := <-keys
	if first == "" {
		t.Fatal("apply attempt carried no Idempotency-Key")
	}
	for i := 1; i < 3; i++ {
		if k := <-keys; k != first {
			t.Fatalf("attempt %d used key %q, first used %q", i, k, first)
		}
	}
}

func TestApplyDoesNotRetryCallerErrors(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"bad script"}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, nil)
	c.SetRetryPolicy(quickRetry)
	if _, err := c.Apply(context.Background(), "+broken("); err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("want 422 error, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (422 must not retry)", got)
	}
}

func TestApplyGivesUpAfterMaxAttempts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"still down"}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, nil)
	c.SetRetryPolicy(quickRetry)
	_, err := c.Apply(context.Background(), "+link(a,b).")
	if err == nil || !strings.Contains(err.Error(), "gave up after 4 attempts") {
		t.Fatalf("want give-up error after 4 attempts, got %v", err)
	}
	if st := c.Stats(); st.Retries != 3 {
		t.Fatalf("stats = %+v, want Retries=3", st)
	}
}

func TestApplyRetriesConnectionFailure(t *testing.T) {
	// A server that accepts, then immediately closes: every attempt is a
	// transport-level failure, never an HTTP status.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer ts.Close()

	c := client.New(ts.URL, nil)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	if _, err := c.Apply(context.Background(), "+link(a,b)."); err == nil {
		t.Fatal("aborted connections must surface an error after retries")
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want Retries=1", st)
	}
}

func TestApplyContextCancelStopsRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"down"}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, nil)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 100, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Apply(ctx, "+link(a,b)."); err == nil {
		t.Fatal("canceled apply must error")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("apply kept retrying %v after cancellation", elapsed)
	}
}

func TestApplyWithKeyEndToEndDedup(t *testing.T) {
	c := startServer(t, server.Options{})
	ctx := context.Background()

	first, err := c.ApplyWithKey(ctx, "stable-key", "+link(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	if first.Deduped {
		t.Fatal("first keyed apply must not dedup")
	}
	second, err := c.ApplyWithKey(ctx, "stable-key", "+link(c,d).")
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.Version != first.Version {
		t.Fatalf("retry = %+v, want deduped at version %d", second, first.Version)
	}
	cnt, err := c.Count(ctx, "link(c,d)")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 1 {
		t.Fatalf("link(c,d) count = %d, want 1", cnt.Count)
	}
	st := c.Stats()
	if st.Applies != 2 || st.Deduped != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want Applies=2 Deduped=1 Retries=0", st)
	}
	if _, err := c.ApplyWithKey(ctx, "", "+link(x,y)."); err == nil {
		t.Fatal("empty key must be rejected")
	}
}

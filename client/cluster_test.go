package client

// Cluster-aware pool tests: discovery from seeds via /v1/info, apply
// re-resolution on Leader-URL redirects and dead leaders, and the read
// fallback ladder under mixed failure modes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// clusterNode fakes one ivmd member: /v1/info reports its role, and
// applies/reads answer with canned outcomes that the test can reshape
// mid-flight (all fields behind mu).
type clusterNode struct {
	mu        sync.Mutex
	role      string // "primary" or "follower"
	epoch     uint64
	leaderURL string // advertised upstream when follower
	failApply int    // status to fail applies with; 0 = accept
	failRead  int    // status to fail reads with; 0 = answer
	applies   int
	reads     int
	url       string
}

func (n *clusterNode) server(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		info := Info{Version: 1, Role: n.role, Epoch: n.epoch}
		if n.role == "follower" {
			info.LeaderURL = n.leaderURL
		}
		n.mu.Unlock()
		json.NewEncoder(w).Encode(info)
	})
	mux.HandleFunc("POST /v1/apply", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		n.applies++
		st, leader := n.failApply, n.leaderURL
		n.mu.Unlock()
		if st != 0 {
			if leader != "" {
				w.Header().Set("Leader-URL", leader)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			json.NewEncoder(w).Encode(map[string]string{"error": "canned apply failure"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"version": 7})
	})
	read := func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		n.reads++
		st, leader := n.failRead, n.leaderURL
		n.mu.Unlock()
		if st != 0 {
			if leader != "" {
				w.Header().Set("Leader-URL", leader)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st)
			json.NewEncoder(w).Encode(map[string]string{"error": "canned read failure"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"version": 7})
	}
	mux.HandleFunc("GET /v1/query", read)
	mux.HandleFunc("GET /v1/rows", read)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	n.url = ts.URL
	return ts
}

func (n *clusterNode) set(f func(*clusterNode)) {
	n.mu.Lock()
	f(n)
	n.mu.Unlock()
}

func (n *clusterNode) counts() (applies, reads int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applies, n.reads
}

// TestClusterPoolDiscovery: seeds that name only followers still find
// the primary through the advertised leader_url hop, the highest-epoch
// primary wins, and followers become the read targets.
func TestClusterPoolDiscovery(t *testing.T) {
	oldPrimary := &clusterNode{role: "primary", epoch: 1}
	newPrimary := &clusterNode{role: "primary", epoch: 2}
	oldPrimary.server(t)
	newPrimary.server(t)
	f1 := &clusterNode{role: "follower", epoch: 2, leaderURL: newPrimary.url}
	f2 := &clusterNode{role: "follower", epoch: 1, leaderURL: oldPrimary.url}
	f1.server(t)
	f2.server(t)

	// Seeds are the two followers, in the order that probes the stale
	// one first; the pool must still land on the epoch-2 primary.
	pool, err := NewClusterPool(context.Background(), []string{f2.url, f1.url}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Leader().BaseURL(); got != newPrimary.url {
		t.Fatalf("discovered leader %q, want the epoch-2 primary %q", got, newPrimary.url)
	}

	if _, err := pool.Apply(context.Background(), "+link(a,b)."); err != nil {
		t.Fatal(err)
	}
	if a, _ := newPrimary.counts(); a != 1 {
		t.Fatalf("apply did not land on the discovered primary (%d applies)", a)
	}
	// Reads stay on the followers.
	if _, err := pool.Rows(context.Background(), "link", ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, r1 := f1.counts(); r1 == 0 {
		if _, r2 := f2.counts(); r2 == 0 {
			t.Fatal("read did not land on a follower")
		}
	}

	// No reachable primary at all is a construction error.
	if _, err := NewClusterPool(context.Background(), []string{"http://127.0.0.1:1"}, nil); err == nil {
		t.Fatal("NewClusterPool succeeded with no reachable primary")
	}
}

// TestClusterPoolApplyFailover: an apply bounced with a Leader-URL
// retargets the pool and retries once; a dead leader triggers seed
// re-discovery. Either way the caller sees one successful ack.
func TestClusterPoolApplyFailover(t *testing.T) {
	promoted := &clusterNode{role: "primary", epoch: 2}
	promoted.server(t)

	t.Run("leader-url redirect", func(t *testing.T) {
		// The old leader was deposed back to follower: applies bounce
		// with 503 + Leader-URL naming its replacement.
		deposed := &clusterNode{role: "follower", epoch: 2, failApply: http.StatusServiceUnavailable}
		deposed.server(t)
		deposed.set(func(n *clusterNode) { n.leaderURL = promoted.url })

		pool := NewReadPool(deposed.url, nil, nil)
		res, err := pool.Apply(context.Background(), "+link(a,b).")
		if err != nil {
			t.Fatalf("apply did not follow the redirect: %v", err)
		}
		if res.Version != 7 {
			t.Fatalf("ack version %d, want the new leader's 7", res.Version)
		}
		if got := pool.Leader().BaseURL(); got != promoted.url {
			t.Fatalf("pool still points at %q, want %q", got, promoted.url)
		}
	})

	t.Run("dead leader, seed rediscovery", func(t *testing.T) {
		follower := &clusterNode{role: "follower", epoch: 2}
		follower.server(t)
		follower.set(func(n *clusterNode) { n.leaderURL = promoted.url })

		pool, err := NewClusterPool(context.Background(), []string{follower.url}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Point the pool at a dead leader, as if the primary crashed
		// after discovery; the next apply must re-discover via seeds.
		pool.setLeader("http://127.0.0.1:1")
		if _, err := pool.Apply(context.Background(), "+link(c,d)."); err != nil {
			t.Fatalf("apply did not re-discover the leader: %v", err)
		}
		if got := pool.Leader().BaseURL(); got != promoted.url {
			t.Fatalf("pool still points at %q, want %q", got, promoted.url)
		}
	})
}

// TestReadPoolMixedFailures drives one read per case through a pool
// whose single follower fails in a different way each time, checking
// the fallback ladder: which errors fall back, what the Fallbacks
// counter reads, and whether the pool's leader moved.
func TestReadPoolMixedFailures(t *testing.T) {
	cases := []struct {
		name        string
		followerURL string // overrides follower when set (dead endpoint)
		failRead    int    // follower's canned read failure
		hintLeader  bool   // follower names the live leader in the error
		deadLeader  bool   // pool's leader is unreachable
		wantErr     bool
		wantFall    uint64 // Fallbacks() after the read
		wantMoved   bool   // pool re-resolved to the hinted leader
	}{
		{name: "503 falls back", failRead: http.StatusServiceUnavailable, wantFall: 1},
		{name: "412 falls back", failRead: http.StatusPreconditionFailed, wantFall: 1},
		{name: "transport error falls back", followerURL: "http://127.0.0.1:1", wantFall: 1},
		{name: "400 surfaces", failRead: http.StatusBadRequest, wantErr: true, wantFall: 0},
		{name: "404 surfaces", failRead: http.StatusNotFound, wantErr: true, wantFall: 0},
		{
			name:       "dead leader chases the follower's hint",
			failRead:   http.StatusPreconditionFailed,
			hintLeader: true,
			deadLeader: true,
			wantFall:   1,
			wantMoved:  true,
		},
		{
			name:        "dead leader with no hint surfaces",
			followerURL: "http://127.0.0.1:1",
			deadLeader:  true,
			wantErr:     true,
			wantFall:    1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leader := &clusterNode{role: "primary", epoch: 2}
			leader.server(t)
			follower := &clusterNode{role: "follower", epoch: 2, failRead: tc.failRead}
			follower.server(t)
			if tc.hintLeader {
				follower.set(func(n *clusterNode) { n.leaderURL = leader.url })
			}

			leaderURL := leader.url
			if tc.deadLeader {
				leaderURL = "http://127.0.0.1:1"
			}
			followerURL := follower.url
			if tc.followerURL != "" {
				followerURL = tc.followerURL
			}
			pool := NewReadPool(leaderURL, []string{followerURL}, nil)

			_, err := pool.Query(context.Background(), "hop(X,Y)", ReadOptions{})
			if tc.wantErr != (err != nil) {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if got := pool.Fallbacks(); got != tc.wantFall {
				t.Fatalf("Fallbacks() = %d, want %d", got, tc.wantFall)
			}
			moved := pool.Leader().BaseURL() != leaderURL
			if moved != tc.wantMoved {
				t.Fatalf("leader moved = %v (now %q), want %v", moved, pool.Leader().BaseURL(), tc.wantMoved)
			}
			if tc.wantMoved {
				// The chased read must have been answered by the hinted
				// leader, not lost.
				if err != nil {
					t.Fatalf("hint chase still failed: %v", err)
				}
				if a, r := leader.counts(); a != 0 && r == 0 {
					t.Fatal("hinted leader never served the read")
				}
			}
		})
	}
}

// TestClusterPoolConcurrentReresolve hammers one pool from many
// goroutines while the leader moves, for the race detector's benefit.
func TestClusterPoolConcurrentReresolve(t *testing.T) {
	promoted := &clusterNode{role: "primary", epoch: 2}
	promoted.server(t)
	deposed := &clusterNode{role: "follower", epoch: 2, failApply: http.StatusServiceUnavailable}
	deposed.server(t)
	deposed.set(func(n *clusterNode) { n.leaderURL = promoted.url })

	pool := NewReadPool(deposed.url, []string{promoted.url}, nil)
	var failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := pool.Apply(context.Background(), fmt.Sprintf("+link(g%d,h%d).", i, j)); err != nil {
					failed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := failed.Load(); got != 0 {
		t.Fatalf("%d applies failed during concurrent re-resolution", got)
	}
	if got := pool.Leader().BaseURL(); got != promoted.url {
		t.Fatalf("pool settled on %q, want %q", got, promoted.url)
	}
}

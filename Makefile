# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke metrics crash cover fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (like CI) if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Full benchmark run (slow; use bench-smoke for a compile-and-run check).
bench:
	$(GO) test -bench=. -run '^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/ivmbench -scale smoke

# One experiment with metrics exposition — writes metrics.txt.
metrics:
	$(GO) run ./cmd/ivmbench -scale smoke -exp E1 -metrics metrics.txt
	@echo "wrote metrics.txt"

# Fault-injection matrix: recovery after simulated crashes must match a
# full recomputation in every case.
crash:
	$(GO) run ./cmd/ivmcrash

# Coverage profile + gate against .github/coverage-baseline.txt.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $$NF); print $$NF}')"; \
	baseline="$$(cat .github/coverage-baseline.txt)"; \
	echo "total coverage: $${total}% (baseline $${baseline}%)"; \
	awk -v t="$$total" -v b="$$baseline" 'BEGIN { exit !(t+0 >= b+0) }' || { \
		echo "coverage $${total}% fell below the $${baseline}% baseline" >&2; exit 1; }

# 30s of native fuzzing per target (same trio as CI).
fuzz-smoke:
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 30s -run '^$$' .
	$(GO) test -fuzz FuzzScanLog -fuzztime 30s -run '^$$' ./internal/storage
	$(GO) test -fuzz FuzzSQLParse -fuzztime 30s -run '^$$' ./internal/sqlview

ci: build vet fmt-check test race bench-smoke metrics crash cover fuzz-smoke

# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke metrics crash ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (like CI) if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Full benchmark run (slow; use bench-smoke for a compile-and-run check).
bench:
	$(GO) test -bench=. -run '^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/ivmbench -scale smoke

# One experiment with metrics exposition — writes metrics.txt.
metrics:
	$(GO) run ./cmd/ivmbench -scale smoke -exp E1 -metrics metrics.txt
	@echo "wrote metrics.txt"

# Fault-injection matrix: recovery after simulated crashes must match a
# full recomputation in every case.
crash:
	$(GO) run ./cmd/ivmcrash

ci: build vet fmt-check test race bench-smoke metrics crash

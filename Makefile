# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke bench-planner metrics crash chaos cover \
	fuzz-smoke serve smoke-server replica failover bench-replica bench-regression docs-lint \
	staticcheck vulncheck ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails (like CI) if any file needs reformatting.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Full benchmark run (slow; use bench-smoke for a compile-and-run check).
bench:
	$(GO) test -bench=. -run '^$$' ./...

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
	$(GO) run ./cmd/ivmbench -scale smoke

# Regenerate the join-planner benchmark report (the committed baseline).
# Fails if the planner misses its 1.5x speedup or 99% cache hit floors.
bench-planner:
	$(GO) run ./cmd/ivmbench -planner BENCH_planner.json

# One experiment with metrics exposition — writes metrics.txt.
metrics:
	$(GO) run ./cmd/ivmbench -scale smoke -exp E1 -metrics metrics.txt
	@echo "wrote metrics.txt"

# Fault-injection matrix: recovery after simulated crashes must match a
# full recomputation in every case.
crash:
	$(GO) run ./cmd/ivmcrash

# The exactly-once chaos gauntlet under -race (faultnet proxy, >=20%
# fault rate, kill-and-restart mid-run), plus the quantitative
# fault-injection benchmark report (BENCH_faults.json).
CHAOS_LOG ?= chaos-faults.log
chaos:
	CHAOS_LOG=$(CHAOS_LOG) $(GO) test -race -count=1 -run TestChaosGauntletExactlyOnce ./internal/server
	$(GO) run ./cmd/ivmbench -scale smoke -faults 0.25 -faults-out BENCH_faults.json

# Coverage profile + gate against .github/coverage-baseline.txt.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	@total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/, "", $$NF); print $$NF}')"; \
	baseline="$$(cat .github/coverage-baseline.txt)"; \
	echo "total coverage: $${total}% (baseline $${baseline}%)"; \
	awk -v t="$$total" -v b="$$baseline" 'BEGIN { exit !(t+0 >= b+0) }' || { \
		echo "coverage $${total}% fell below the $${baseline}% baseline" >&2; exit 1; }

# 30s of native fuzzing per target (same quartet as CI).
fuzz-smoke:
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 30s -run '^$$' .
	$(GO) test -fuzz FuzzScanLog -fuzztime 30s -run '^$$' ./internal/storage
	$(GO) test -fuzz FuzzReplRecord -fuzztime 30s -run '^$$' ./internal/storage
	$(GO) test -fuzz FuzzSQLParse -fuzztime 30s -run '^$$' ./internal/sqlview

# Run ivmd against a scratch store with the smoke program (Ctrl-C to
# stop; an acked apply is never lost across the SIGINT shutdown).
SERVE_STORE ?= /tmp/ivmd-store
serve:
	$(GO) run ./cmd/ivmd -store $(SERVE_STORE) \
		-program testdata/server/views.dl -data testdata/server/facts.dl

# The CI server-smoke job: boot ivmd, drive mixed load through the
# client package, SIGTERM, require a clean checkpointed shutdown.
smoke-server:
	sh scripts/server_smoke.sh

# The CI replication-smoke job: primary + follower on temp stores, load,
# kill-and-restart the primary, require follower lag to recover to zero
# with the divergence guard untripped. Also the -race replica suites.
replica:
	$(GO) test -race -count=1 ./internal/replica
	sh scripts/replica_smoke.sh

# The CI failover-smoke job: primary + two followers, writes through a
# follower's forwarding proxy, SIGTERM the primary, `ivmd -promote` the
# caught-up follower, require writes through the surviving follower to
# reach the new leader, then revive the old primary and require both of
# its serving surfaces to be fenced (409 + replica_fenced_total).
failover:
	sh scripts/failover_smoke.sh

# Regenerate the replication read-fanout report (the committed
# BENCH_replica.json). The 1.8x speedup floor over 2 followers is
# enforced on hosts with >= 4 CPUs (below that the daemons share cores
# and the floor is advisory).
bench-replica:
	$(GO) build -o bin/ivmd ./cmd/ivmd
	$(GO) run ./cmd/ivmbench -replica BENCH_replica.json -ivmd bin/ivmd

# The CI bench-regression guard: fresh readers and planner runs vs the
# committed baselines, then a served-load data point.
bench-regression:
	$(GO) run ./cmd/ivmbench -scale smoke -readers BENCH_current.json \
		-baseline BENCH_readers.json -tolerance 3
	$(GO) run ./cmd/ivmbench -scale smoke -planner BENCH_planner_current.json \
		-planner-baseline BENCH_planner.json -tolerance 3
	$(GO) run ./cmd/ivmbench -scale smoke -server self -server-out BENCH_server.json

# Docs lint: the README stays within its line budget (deep dives live
# in docs/), and every relative markdown link in README.md and docs/
# resolves to a file that exists.
docs-lint:
	sh scripts/docs_lint.sh

# Lint/vuln scans run in CI unconditionally (installed there via
# `go install`); locally they run only if already on PATH — this repo
# adds no dependencies to the dev container.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

ci: build vet fmt-check test race bench-smoke metrics crash chaos cover fuzz-smoke \
	smoke-server replica failover bench-regression docs-lint staticcheck vulncheck
